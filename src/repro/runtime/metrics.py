"""Metrics collected by the simulated runtime.

The §5 discussion of the paper motivates measuring the run-time overhead
of dynamic provenance tracking; these counters are the measurement
surface for experiments E13 (metadata overhead), the runtime half of
E2's ablation, and the incremental-vetting A/B (E18).

Byte accounting is **lazy**: serializing a payload exists only to price
it (network latency never depends on size), so :meth:`record_send`
takes a *sizer* thunk and defers the encode until a byte metric is
read — or until ``PENDING_SIZER_BOUND`` sends have accumulated, at
which point the batch settles so the pending list (each thunk pins its
payload) stays bounded on arbitrarily long runs.  A run of up to the
bound that never looks at ``bytes_*`` never encodes;
``RuntimeMetrics(detailed=False)`` drops the thunks entirely (bytes
report 0) when byte metrics are not wanted at all.

The per-delivery series (``delivered`` records, latencies, spine
lengths, event counts) are **streamed**: every aggregate
:meth:`summary` reports — maxima, sums, counts — is maintained
incrementally at record time, and the raw series exist only as an
inspection surface.  ``retain=N`` (opt-in; the default ``None`` keeps
everything, as the seed did) caps each series at its last ``N``
entries, so a week-long soak holds O(N) memory while ``summary()`` —
computed from the streaming aggregates, never from the capped series —
stays byte-identical to an unbounded run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, MutableSequence, Optional

from repro.core.names import Channel, Principal
from repro.core.values import AnnotatedValue

__all__ = ["DeliveryRecord", "RuntimeMetrics"]

PayloadSizer = Callable[[], tuple[int, int]]
"""Deferred encode: returns ``(payload_bytes, provenance_bytes)``."""


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One successful delivery, as observed by the middleware."""

    time: float
    principal: Principal
    channel: Channel
    values: tuple[AnnotatedValue, ...]
    branch_index: int


@dataclass(slots=True)
class RuntimeMetrics:
    """Counters and series accumulated over a simulation run."""

    detailed: bool = True
    """False drops byte accounting entirely instead of deferring it."""

    retain: Optional[int] = None
    """Cap each per-delivery series at its last ``retain`` entries.

    ``None`` (default) keeps the full series.  Aggregates are streamed
    either way, so :meth:`summary` is unaffected by the cap."""

    messages_sent: int = 0
    deliveries: int = 0
    pattern_checks: int = 0
    """Payload *components* vetted (one ``κ ⊨ π`` decision each)."""

    pattern_rejections: int = 0
    """Components whose pattern refused them (vetting stops at the first)."""

    rejections_by_pattern: dict[str, int] = field(default_factory=dict)
    """Rejection counts keyed by the rejecting pattern's rendering."""

    vet_transitions: int = 0
    """Automaton work done by ``Middleware.vet``: lazy-DFA transitions
    taken (bank mode) or NFA spine events consumed (reference mode)."""

    vet_cache_hits: int = 0
    """Vet queries answered entirely from a cached spine run."""

    vets_elided: int = 0
    """Payload components admitted *without* a ``κ ⊨ π`` decision because
    a :class:`~repro.analysis.static_flow.StaticCertificate` proved the
    site REDUNDANT."""

    branches_pruned: int = 0
    """Receive branches registered but never scanned because the
    certificate proved them DEAD."""

    forgeries_blocked: int = 0
    forgeries_accepted: int = 0

    replays_blocked: int = 0
    """Chain-valid histories presented through an unauthorized door —
    replays of genuine provenance — rejected at ingress."""

    tamper_detected: int = 0
    """Histories whose integrity chain failed verification (forged
    origin, truncation, splice, collusion implicating an honest
    principal, wire corruption)."""

    tamper_by_kind: dict[str, int] = field(default_factory=dict)
    """Detections keyed by attack/fault kind (``forge``, ``truncate``,
    ``splice``, ``collude``, ``replay``, ``garble``, ``wire``)."""

    attack_attempts: dict[str, int] = field(default_factory=dict)
    """Injection attempts keyed by adversary name — denominators for the
    detection rate E22 gates."""

    principals_quarantined: int = 0
    """Principals cut off after a detected tampering attempt."""

    quarantined_drops: int = 0
    """Sends/injections silently dropped because the sender (or link)
    was already quarantined."""

    certificates_revoked: int = 0
    """Static certificates invalidated by detected tampering (vetting
    resumes for the affected runtime)."""

    verify_calls: int = 0
    """Spine verifications performed at ingress/delivery."""

    verify_nodes_checked: int = 0
    """Attestation tags actually checked — grows O(new hops), not
    O(spine length), thanks to verdict caching."""

    verify_cache_hits: int = 0
    """Spine nodes answered from the verifier's verdict cache."""

    faults_dropped: int = 0
    faults_duplicated: int = 0
    faults_reordered: int = 0
    faults_corrupted: int = 0
    """Link-level fault injections actually applied (per fault kind)."""

    provenance_spine_lengths: MutableSequence[int] = field(default_factory=list)
    provenance_event_counts: MutableSequence[int] = field(default_factory=list)
    delivery_latencies: MutableSequence[float] = field(default_factory=list)
    delivered: MutableSequence[DeliveryRecord] = field(default_factory=list)
    _bytes_total: int = 0
    _bytes_payload: int = 0
    _bytes_provenance: int = 0
    _pending_sizers: list[PayloadSizer] = field(default_factory=list)
    _max_provenance_spine: int = 0
    _max_provenance_events: int = 0
    _sum_provenance_events: int = 0
    _count_provenance_events: int = 0
    _sum_latency: float = 0.0
    _max_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.retain is not None:
            if self.retain < 0:
                raise ValueError(f"retain must be non-negative: {self.retain}")
            cap = self.retain
            self.provenance_spine_lengths = deque(maxlen=cap)
            self.provenance_event_counts = deque(maxlen=cap)
            self.delivery_latencies = deque(maxlen=cap)
            self.delivered = deque(maxlen=cap)

    PENDING_SIZER_BOUND = 4096
    """Deferred sends are settled in batches past this bound, so the
    pending list (each thunk pins its stamped payload) stays O(1) on
    arbitrarily long runs while short runs that never read a byte
    metric still pay zero encodes."""

    def record_send(self, sizer: Optional[PayloadSizer] = None) -> None:
        """Count a send; defer its byte accounting to ``sizer``.

        The thunk runs at most once — on the first read of any byte
        metric after this send, or when the pending batch fills — and
        never if ``detailed`` is off.  Callers on a ``detailed=False``
        hot path may pass no sizer at all and skip even building the
        closure; every other per-send counter still updates here.
        """

        self.messages_sent += 1
        if self.detailed and sizer is not None:
            self._pending_sizers.append(sizer)
            if len(self._pending_sizers) >= self.PENDING_SIZER_BOUND:
                self._settle_bytes()

    def record_attack(self, adversary: str) -> None:
        """Count one injection attempt by the named adversary."""

        self.attack_attempts[adversary] = (
            self.attack_attempts.get(adversary, 0) + 1
        )

    def record_tamper(self, kind: str) -> None:
        """Count one detected tampering, attributed to an attack kind."""

        self.tamper_detected += 1
        self.tamper_by_kind[kind] = self.tamper_by_kind.get(kind, 0) + 1

    def record_verify(self, nodes_checked: int, cache_hits: int) -> None:
        """Fold one verification's cost deltas into the counters."""

        self.verify_calls += 1
        self.verify_nodes_checked += nodes_checked
        self.verify_cache_hits += cache_hits

    def record_rejection(self, pattern: Any) -> None:
        """Attribute a vetting rejection to the pattern that refused."""

        self.pattern_rejections += 1
        key = str(pattern)
        self.rejections_by_pattern[key] = (
            self.rejections_by_pattern.get(key, 0) + 1
        )

    def _settle_bytes(self) -> None:
        if not self._pending_sizers:
            return
        pending, self._pending_sizers = self._pending_sizers, []
        for sizer in pending:
            payload_bytes, provenance_bytes = sizer()
            self._bytes_total += payload_bytes + provenance_bytes
            self._bytes_payload += payload_bytes
            self._bytes_provenance += provenance_bytes

    @property
    def bytes_total(self) -> int:
        self._settle_bytes()
        return self._bytes_total

    @property
    def bytes_payload(self) -> int:
        self._settle_bytes()
        return self._bytes_payload

    @property
    def bytes_provenance(self) -> int:
        self._settle_bytes()
        return self._bytes_provenance

    @property
    def pending_byte_accounting(self) -> int:
        """Sends whose encode is still deferred — for tests and benches."""

        return len(self._pending_sizers)

    @property
    def keep_delivered(self) -> bool:
        """Whether per-delivery records are retained at all.

        ``retain=0`` callers (throughput benches, soak runs) skip even
        constructing the :class:`DeliveryRecord` — see
        :meth:`record_delivery_streaming`."""

        return self.retain != 0

    def record_delivery(self, record: DeliveryRecord, latency: float) -> None:
        # one pass per value: the aggregate updates mirror
        # record_delivery_streaming with the series appends fused in
        # (tests pin the two paths to identical summaries)
        self.delivery_latencies.append(latency)
        self.delivered.append(record)
        self.deliveries += 1
        self._sum_latency += latency
        if latency > self._max_latency:
            self._max_latency = latency
        for value in record.values:
            spine = len(value.provenance)
            events = value.provenance.total_events()
            self.provenance_spine_lengths.append(spine)
            self.provenance_event_counts.append(events)
            if spine > self._max_provenance_spine:
                self._max_provenance_spine = spine
            if events > self._max_provenance_events:
                self._max_provenance_events = events
            self._sum_provenance_events += events
            self._count_provenance_events += 1

    def record_delivery_streaming(
        self, values: tuple[AnnotatedValue, ...], latency: float
    ) -> None:
        """The aggregate-only half of :meth:`record_delivery`.

        Every counter :meth:`summary` and :meth:`aggregates` read is
        updated here, so a ``retain=0`` run reports identically to a
        retained one."""

        self.deliveries += 1
        self._sum_latency += latency
        if latency > self._max_latency:
            self._max_latency = latency
        for value in values:
            spine = len(value.provenance)
            events = value.provenance.total_events()
            if spine > self._max_provenance_spine:
                self._max_provenance_spine = spine
            if events > self._max_provenance_events:
                self._max_provenance_events = events
            self._sum_provenance_events += events
            self._count_provenance_events += 1

    @property
    def provenance_overhead_ratio(self) -> float:
        """Provenance bytes as a fraction of all bytes shipped."""

        if not self.bytes_total:
            return 0.0
        return self.bytes_provenance / self.bytes_total

    def aggregates(self) -> dict[str, float]:
        """Streaming latency/provenance aggregates for long-run reports.

        Computed from O(1) state maintained at record time — valid under
        any ``retain`` cap, including ``retain=0``.
        """

        return {
            "mean_delivery_latency": (
                self._sum_latency / self.deliveries if self.deliveries else 0.0
            ),
            "max_delivery_latency": self._max_latency,
            "max_provenance_events": self._max_provenance_events,
            "retained_deliveries": len(self.delivered),
        }

    def summary(self) -> dict[str, Any]:
        """A flat dict for reports and benchmark rows.

        Aggregates come from the streaming counters, so the summary of a
        capped (``retain=N``) run is identical to an unbounded one.
        ``provenance_values``/``provenance_events_total`` carry the raw
        integer aggregates behind ``mean_provenance_events`` so
        :meth:`merge` can recombine summaries exactly (integer sums,
        one final division) instead of approximating a mean of means.
        """

        return {
            "messages_sent": self.messages_sent,
            "deliveries": self.deliveries,
            "bytes_total": self.bytes_total,
            "bytes_payload": self.bytes_payload,
            "bytes_provenance": self.bytes_provenance,
            "provenance_overhead_ratio": round(self.provenance_overhead_ratio, 4),
            "pattern_checks": self.pattern_checks,
            "pattern_rejections": self.pattern_rejections,
            "rejections_by_pattern": dict(self.rejections_by_pattern),
            "vet_transitions": self.vet_transitions,
            "vet_cache_hits": self.vet_cache_hits,
            "vets_elided": self.vets_elided,
            "branches_pruned": self.branches_pruned,
            "forgeries_blocked": self.forgeries_blocked,
            "forgeries_accepted": self.forgeries_accepted,
            "replays_blocked": self.replays_blocked,
            "tamper_detected": self.tamper_detected,
            "tamper_by_kind": dict(self.tamper_by_kind),
            "attack_attempts": dict(self.attack_attempts),
            "principals_quarantined": self.principals_quarantined,
            "quarantined_drops": self.quarantined_drops,
            "certificates_revoked": self.certificates_revoked,
            "verify_calls": self.verify_calls,
            "verify_nodes_checked": self.verify_nodes_checked,
            "verify_cache_hits": self.verify_cache_hits,
            "faults_dropped": self.faults_dropped,
            "faults_duplicated": self.faults_duplicated,
            "faults_reordered": self.faults_reordered,
            "faults_corrupted": self.faults_corrupted,
            "max_provenance_spine": self._max_provenance_spine,
            "provenance_values": self._count_provenance_events,
            "provenance_events_total": self._sum_provenance_events,
            "mean_provenance_events": (
                self._sum_provenance_events / self._count_provenance_events
                if self._count_provenance_events
                else 0.0
            ),
        }

    _MERGE_SUM_KEYS = (
        "messages_sent",
        "deliveries",
        "bytes_total",
        "bytes_payload",
        "bytes_provenance",
        "pattern_checks",
        "pattern_rejections",
        "vet_transitions",
        "vet_cache_hits",
        "vets_elided",
        "branches_pruned",
        "forgeries_blocked",
        "forgeries_accepted",
        "replays_blocked",
        "tamper_detected",
        "principals_quarantined",
        "quarantined_drops",
        "certificates_revoked",
        "verify_calls",
        "verify_nodes_checked",
        "verify_cache_hits",
        "faults_dropped",
        "faults_duplicated",
        "faults_reordered",
        "faults_corrupted",
        "provenance_values",
        "provenance_events_total",
    )
    _MERGE_MAX_KEYS = ("max_provenance_spine",)
    _MERGE_DICT_KEYS = (
        "rejections_by_pattern",
        "tamper_by_kind",
        "attack_attempts",
    )

    @classmethod
    def merge(cls, *summaries: dict[str, Any]) -> dict[str, Any]:
        """Combine :meth:`summary` dicts from several runtimes into one.

        Counters sum, maxima max, the rejection attributions merge
        per-pattern, and the derived fields (overhead ratio, mean
        events per value) are recomputed from the merged raw aggregates
        — so ``merge(s)`` of a single summary is that summary, and
        merging per-shard summaries of a sharded run reports exactly
        what one runtime doing all the work would have reported (modulo
        bytes, which honestly differ when cross-shard links resume
        their codec tables).  ``merge()`` of nothing is the summary of
        an idle runtime.
        """

        merged: dict[str, Any] = {key: 0 for key in cls._MERGE_SUM_KEYS}
        for key in cls._MERGE_MAX_KEYS:
            merged[key] = 0
        by_key: dict[str, dict[str, int]] = {
            key: {} for key in cls._MERGE_DICT_KEYS
        }
        for summary in summaries:
            # tolerate partial dicts (absent counter == idle counter) so
            # summaries from snapshots predating a counter still merge
            for key in cls._MERGE_SUM_KEYS:
                merged[key] += summary.get(key, 0)
            for key in cls._MERGE_MAX_KEYS:
                if summary.get(key, 0) > merged[key]:
                    merged[key] = summary[key]
            for key in cls._MERGE_DICT_KEYS:
                bucket = by_key[key]
                for name, count in summary.get(key, {}).items():
                    bucket[name] = bucket.get(name, 0) + count
        merged.update(by_key)
        merged["provenance_overhead_ratio"] = (
            round(merged["bytes_provenance"] / merged["bytes_total"], 4)
            if merged["bytes_total"]
            else 0.0
        )
        merged["mean_provenance_events"] = (
            merged["provenance_events_total"] / merged["provenance_values"]
            if merged["provenance_values"]
            else 0.0
        )
        return merged
