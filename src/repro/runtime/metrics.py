"""Metrics collected by the simulated runtime.

The §5 discussion of the paper motivates measuring the run-time overhead
of dynamic provenance tracking; these counters are the measurement
surface for experiments E13 (metadata overhead), the runtime half of
E2's ablation, and the incremental-vetting A/B (E18).

Byte accounting is **lazy**: serializing a payload exists only to price
it (network latency never depends on size), so :meth:`record_send`
takes a *sizer* thunk and defers the encode until a byte metric is
read — or until ``PENDING_SIZER_BOUND`` sends have accumulated, at
which point the batch settles so the pending list (each thunk pins its
payload) stays bounded on arbitrarily long runs.  A run of up to the
bound that never looks at ``bytes_*`` never encodes;
``RuntimeMetrics(detailed=False)`` drops the thunks entirely (bytes
report 0) when byte metrics are not wanted at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.names import Channel, Principal
from repro.core.values import AnnotatedValue

__all__ = ["DeliveryRecord", "RuntimeMetrics"]

PayloadSizer = Callable[[], tuple[int, int]]
"""Deferred encode: returns ``(payload_bytes, provenance_bytes)``."""


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One successful delivery, as observed by the middleware."""

    time: float
    principal: Principal
    channel: Channel
    values: tuple[AnnotatedValue, ...]
    branch_index: int


@dataclass(slots=True)
class RuntimeMetrics:
    """Counters and series accumulated over a simulation run."""

    detailed: bool = True
    """False drops byte accounting entirely instead of deferring it."""

    messages_sent: int = 0
    deliveries: int = 0
    pattern_checks: int = 0
    """Payload *components* vetted (one ``κ ⊨ π`` decision each)."""

    pattern_rejections: int = 0
    """Components whose pattern refused them (vetting stops at the first)."""

    rejections_by_pattern: dict[str, int] = field(default_factory=dict)
    """Rejection counts keyed by the rejecting pattern's rendering."""

    vet_transitions: int = 0
    """Automaton work done by ``Middleware.vet``: lazy-DFA transitions
    taken (bank mode) or NFA spine events consumed (reference mode)."""

    vet_cache_hits: int = 0
    """Vet queries answered entirely from a cached spine run."""

    forgeries_blocked: int = 0
    forgeries_accepted: int = 0
    provenance_spine_lengths: list[int] = field(default_factory=list)
    provenance_event_counts: list[int] = field(default_factory=list)
    delivery_latencies: list[float] = field(default_factory=list)
    delivered: list[DeliveryRecord] = field(default_factory=list)
    _bytes_total: int = 0
    _bytes_payload: int = 0
    _bytes_provenance: int = 0
    _pending_sizers: list[PayloadSizer] = field(default_factory=list)

    PENDING_SIZER_BOUND = 4096
    """Deferred sends are settled in batches past this bound, so the
    pending list (each thunk pins its stamped payload) stays O(1) on
    arbitrarily long runs while short runs that never read a byte
    metric still pay zero encodes."""

    def record_send(self, sizer: PayloadSizer) -> None:
        """Count a send; defer its byte accounting to ``sizer``.

        The thunk runs at most once — on the first read of any byte
        metric after this send, or when the pending batch fills — and
        never if ``detailed`` is off.
        """

        self.messages_sent += 1
        if self.detailed:
            self._pending_sizers.append(sizer)
            if len(self._pending_sizers) >= self.PENDING_SIZER_BOUND:
                self._settle_bytes()

    def record_rejection(self, pattern: Any) -> None:
        """Attribute a vetting rejection to the pattern that refused."""

        self.pattern_rejections += 1
        key = str(pattern)
        self.rejections_by_pattern[key] = (
            self.rejections_by_pattern.get(key, 0) + 1
        )

    def _settle_bytes(self) -> None:
        if not self._pending_sizers:
            return
        pending, self._pending_sizers = self._pending_sizers, []
        for sizer in pending:
            payload_bytes, provenance_bytes = sizer()
            self._bytes_total += payload_bytes + provenance_bytes
            self._bytes_payload += payload_bytes
            self._bytes_provenance += provenance_bytes

    @property
    def bytes_total(self) -> int:
        self._settle_bytes()
        return self._bytes_total

    @property
    def bytes_payload(self) -> int:
        self._settle_bytes()
        return self._bytes_payload

    @property
    def bytes_provenance(self) -> int:
        self._settle_bytes()
        return self._bytes_provenance

    @property
    def pending_byte_accounting(self) -> int:
        """Sends whose encode is still deferred — for tests and benches."""

        return len(self._pending_sizers)

    def record_delivery(self, record: DeliveryRecord, latency: float) -> None:
        self.deliveries += 1
        self.delivery_latencies.append(latency)
        self.delivered.append(record)
        for value in record.values:
            self.provenance_spine_lengths.append(len(value.provenance))
            self.provenance_event_counts.append(value.provenance.total_events())

    @property
    def provenance_overhead_ratio(self) -> float:
        """Provenance bytes as a fraction of all bytes shipped."""

        if not self.bytes_total:
            return 0.0
        return self.bytes_provenance / self.bytes_total

    def summary(self) -> dict[str, Any]:
        """A flat dict for reports and benchmark rows."""

        spine = self.provenance_spine_lengths
        events = self.provenance_event_counts
        return {
            "messages_sent": self.messages_sent,
            "deliveries": self.deliveries,
            "bytes_total": self.bytes_total,
            "bytes_payload": self.bytes_payload,
            "bytes_provenance": self.bytes_provenance,
            "provenance_overhead_ratio": round(self.provenance_overhead_ratio, 4),
            "pattern_checks": self.pattern_checks,
            "pattern_rejections": self.pattern_rejections,
            "rejections_by_pattern": dict(self.rejections_by_pattern),
            "vet_transitions": self.vet_transitions,
            "vet_cache_hits": self.vet_cache_hits,
            "forgeries_blocked": self.forgeries_blocked,
            "forgeries_accepted": self.forgeries_accepted,
            "max_provenance_spine": max(spine, default=0),
            "mean_provenance_events": (
                sum(events) / len(events) if events else 0.0
            ),
        }
