"""The trusted provenance-tracking middleware.

The paper's two-tier design (footnote 1) assigns provenance tracking to a
trusted layer beneath application code: applications just send and
receive; the middleware stamps output events at send time, vets patterns
and stamps input events at delivery time.  Principals get *read-only*
access to provenance and cannot forge it — the integrity property that
the application-level encoding of §1 (``b[n⟨a, v₂⟩]``) lacks.

Architecture:

* one :class:`ChannelManager` per channel name — the rendezvous point
  holding undelivered messages and waiting receivers (an implementation
  of the calculus' message terms ``n⟨⟨w⟩⟩``);
* :class:`Middleware` — the API nodes call: ``send`` serializes the
  payload (bytes are counted — experiment E13 measures real metadata
  overhead), stamps the output event and routes to the manager with
  network latency; ``receive`` registers branch patterns and a
  continuation, and the manager fires the first branch whose patterns
  admit an available message, stamping the input event before handing the
  values over;
* ``inject_raw`` — the unchecked path an adversary would use; with
  integrity enforcement on (the default) unsigned injections are dropped,
  modelling the digital-signature scheme the paper appeals to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.names import Channel, NameSupply, Principal
from repro.core.patterns import Pattern
from repro.core.provenance import InputEvent, OutputEvent, Provenance
from repro.core.semantics import SemanticsMode
from repro.core.values import AnnotatedValue
from repro.runtime.metrics import DeliveryRecord, RuntimeMetrics
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import (
    WIRE_V1,
    WIRE_V2,
    encode_plain,
    encode_payload,
    encode_payload_v2,
    encode_varint,
)

__all__ = ["ReceiveBranch", "PendingReceive", "ChannelManager", "Middleware"]


@dataclass(frozen=True, slots=True)
class ReceiveBranch:
    """One summand of a pattern-restricted input, runtime form."""

    patterns: tuple[Pattern, ...]
    callback: Callable[[int, tuple[AnnotatedValue, ...]], None] = field(hash=False)

    @property
    def arity(self) -> int:
        return len(self.patterns)


@dataclass(slots=True)
class PendingReceive:
    """A registered receiver: principal, channel view, branches."""

    principal: Principal
    channel_provenance: Provenance
    branches: tuple[ReceiveBranch, ...]
    posted_at: float
    consumed: bool = False


@dataclass(slots=True)
class _StoredMessage:
    payload: tuple[AnnotatedValue, ...]
    posted_at: float


class ChannelManager:
    """Rendezvous state for a single channel."""

    def __init__(self, channel: Channel, middleware: "Middleware") -> None:
        self.channel = channel
        self._middleware = middleware
        self._messages: deque[_StoredMessage] = deque()
        self._waiters: list[PendingReceive] = []
        self._consumed_count = 0
        self._scan_start = 0

    @property
    def queued_messages(self) -> int:
        return len(self._messages)

    @property
    def waiting_receivers(self) -> int:
        return sum(1 for waiter in self._waiters if not waiter.consumed)

    def post(self, payload: tuple[AnnotatedValue, ...], posted_at: float) -> None:
        self._messages.append(_StoredMessage(payload, posted_at))
        self._match()

    def register(self, pending: PendingReceive) -> None:
        self._waiters.append(pending)
        self._match()

    def _match(self) -> None:
        """Deliver every (message, waiter, branch) triple that fits.

        A single pass in registration order suffices: delivery callbacks
        never re-enter the manager (nodes *schedule* continuations on the
        simulator rather than running them inline), and consuming a
        message can only disable, never enable, an earlier waiter — so
        nothing a later delivery does can unblock a waiter the pass
        already skipped.  The old implementation restarted the scan from
        the first waiter after every delivery, O(waiters²) on fan-in
        channels; this one is O(waiters) per post, with the consumed
        prefix skipped and the waiter list compacted lazily.
        """

        waiters = self._waiters
        start = self._scan_start
        while start < len(waiters) and waiters[start].consumed:
            start += 1
        self._scan_start = start
        for index in range(start, len(waiters)):
            if not self._messages:
                break
            waiter = waiters[index]
            if waiter.consumed:
                continue
            if self._try_deliver(waiter):
                self._consumed_count += 1
        if self._consumed_count * 2 > len(waiters):
            self._waiters = [w for w in waiters if not w.consumed]
            self._consumed_count = 0
            self._scan_start = 0

    def _try_deliver(self, waiter: PendingReceive) -> bool:
        middleware = self._middleware
        for message_index, stored in enumerate(self._messages):
            for branch_index, branch in enumerate(waiter.branches):
                if branch.arity != len(stored.payload):
                    continue
                if not middleware.vet(branch.patterns, stored.payload):
                    continue
                del self._messages[message_index]
                waiter.consumed = True
                values = middleware.stamp_input(
                    waiter.principal, waiter.channel_provenance, stored.payload
                )
                record = DeliveryRecord(
                    middleware.simulator.now,
                    waiter.principal,
                    self.channel,
                    values,
                    branch_index,
                )
                middleware.metrics.record_delivery(
                    record, middleware.simulator.now - stored.posted_at
                )
                branch.callback(branch_index, values)
                return True
        return False


class Middleware:
    """The trusted layer every node talks to."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        metrics: Optional[RuntimeMetrics] = None,
        mode: SemanticsMode = SemanticsMode.TRACKED,
        enforce_integrity: bool = True,
        wire_version: int = WIRE_V2,
    ) -> None:
        if wire_version not in (WIRE_V1, WIRE_V2):
            raise ValueError(f"unknown wire version {wire_version}")
        self.simulator = simulator
        self.network = network
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.mode = mode
        self.enforce_integrity = enforce_integrity
        self.wire_version = wire_version
        self.supply = NameSupply()
        self._managers: dict[Channel, ChannelManager] = {}

    def manager(self, channel: Channel) -> ChannelManager:
        existing = self._managers.get(channel)
        if existing is None:
            existing = ChannelManager(channel, self)
            self._managers[channel] = existing
        return existing

    # -- provenance operations (the trusted tier) -------------------------

    def stamp_output(
        self,
        principal: Principal,
        channel_provenance: Provenance,
        payload: tuple[AnnotatedValue, ...],
    ) -> tuple[AnnotatedValue, ...]:
        """R-Send's provenance update: prepend ``a!κm`` to every component."""

        if self.mode is SemanticsMode.ERASED:
            return payload
        event = OutputEvent(principal, channel_provenance)
        return tuple(value.record(event) for value in payload)

    def stamp_input(
        self,
        principal: Principal,
        channel_provenance: Provenance,
        payload: tuple[AnnotatedValue, ...],
    ) -> tuple[AnnotatedValue, ...]:
        """R-Recv's provenance update: prepend ``a?κm``."""

        if self.mode is SemanticsMode.ERASED:
            return payload
        event = InputEvent(principal, channel_provenance)
        return tuple(value.record(event) for value in payload)

    def vet(
        self, patterns: tuple[Pattern, ...], payload: tuple[AnnotatedValue, ...]
    ) -> bool:
        """Pattern vetting ``κv ⊨ π`` per component (skipped when erased)."""

        self.metrics.pattern_checks += 1
        if self.mode is SemanticsMode.ERASED:
            return True
        admitted = all(
            pattern.matches(value.provenance)
            for pattern, value in zip(patterns, payload)
        )
        if not admitted:
            self.metrics.pattern_rejections += 1
        return admitted

    # -- node-facing API ---------------------------------------------------

    def send(
        self,
        principal: Principal,
        channel: AnnotatedValue,
        payload: tuple[AnnotatedValue, ...],
    ) -> None:
        """Asynchronous output: stamp, serialize, ship."""

        if not isinstance(channel.value, Channel):
            raise TypeError(f"cannot send on non-channel {channel.value!r}")
        stamped = self.stamp_output(principal, channel.provenance, payload)
        # Honest E13 accounting: provenance bytes are whatever the chosen
        # codec ships beyond the plain parts (under v2 shared subtrees
        # are shipped once, so the metadata tax reflects the DAG size).
        if self.wire_version == WIRE_V1:
            total_bytes = len(encode_payload(stamped))
        else:
            total_bytes = len(encode_payload_v2(stamped))
        plain_bytes = len(encode_varint(len(stamped))) + sum(
            len(encode_plain(value.value)) for value in stamped
        )
        self.metrics.record_send(plain_bytes, total_bytes - plain_bytes)
        destination = self.manager(channel.value)
        posted_at = self.simulator.now
        self.network.deliver(
            total_bytes, lambda: destination.post(stamped, posted_at)
        )

    def receive(
        self,
        principal: Principal,
        channel: AnnotatedValue,
        branches: tuple[ReceiveBranch, ...],
    ) -> PendingReceive:
        """Pattern-restricted input: register and wait."""

        if not isinstance(channel.value, Channel):
            raise TypeError(f"cannot receive on non-channel {channel.value!r}")
        pending = PendingReceive(
            principal, channel.provenance, branches, self.simulator.now
        )
        self.manager(channel.value).register(pending)
        return pending

    def inject_raw(
        self,
        channel: Channel,
        payload: tuple[AnnotatedValue, ...],
        signed: bool = False,
    ) -> bool:
        """The adversary's door: post a message without the send path.

        With integrity enforcement (default) unsigned injections are
        rejected — provenance cannot be forged past the middleware.
        Disabling enforcement models the convention-based encoding of the
        paper's introduction, where nothing stops ``b`` from claiming
        ``a`` sent the value.
        """

        if self.enforce_integrity and not signed:
            self.metrics.forgeries_blocked += 1
            return False
        self.metrics.forgeries_accepted += 1
        self.manager(channel).post(payload, self.simulator.now)
        return True
