"""The trusted provenance-tracking middleware.

The paper's two-tier design (footnote 1) assigns provenance tracking to a
trusted layer beneath application code: applications just send and
receive; the middleware stamps output events at send time, vets patterns
and stamps input events at delivery time.  Principals get *read-only*
access to provenance and cannot forge it — the integrity property that
the application-level encoding of §1 (``b[n⟨a, v₂⟩]``) lacks.

Architecture:

* one :class:`ChannelManager` per channel name — the rendezvous point
  holding undelivered messages and waiting receivers (an implementation
  of the calculus' message terms ``n⟨⟨w⟩⟩``);
* :class:`Middleware` — the API nodes call: ``send`` stamps the output
  event and routes to the manager with network latency (byte accounting
  for experiment E13 is deferred to :class:`RuntimeMetrics` sizer
  thunks, so the encode is only paid when the metric is read);
  ``receive`` registers branch patterns and a continuation, and the
  manager fires the first branch whose patterns admit an available
  message, stamping the input event before handing the values over.

Pattern vetting is incremental by default (``vetting="bank"``): every
sample pattern registered on a channel's receive branches is fused into
one :class:`repro.patterns.dfa.PolicyBank`, whose reversed lazy DFAs
cache their reached state per interned spine node — so vetting a value
that gained one event since its last hop costs one memoized transition
instead of a whole-history NFA re-simulation.  ``vetting="nfa"`` keeps
the per-message subset simulation as the A/B reference
(``benchmarks/bench_patterns_incremental.py`` gates the differential
and the work ratio).
* ``inject_raw`` — the unchecked path an adversary would use; with
  integrity enforcement on (the default) unsigned injections are dropped,
  modelling the digital-signature scheme the paper appeals to.

Integrity (PR 8): the signature scheme is no longer a boolean.  The
middleware owns a :class:`~repro.core.integrity.KeyRing` and attests
every spine node it stamps (HMAC of the node's Merkle digest under the
head principal's key, recorded in a weak
:class:`~repro.core.integrity.AttestationStore`), so any history can be
re-verified later in O(new hops) via the cached
:class:`~repro.core.integrity.SpineVerifier`.  Ingress through
``inject_raw`` is classified — unauthenticated knock, replayed genuine
history, or forged/tampered chain — and detected tampering degrades
gracefully: the presenting principal is quarantined (its subsequent
sends/injections drop silently), any static certificate is revoked so
full vetting resumes, and every decision lands in
:class:`RuntimeMetrics`.  ``verify_deliveries=True`` additionally
re-verifies each payload at its rendezvous before it can match a
receiver — the paranoid mode the E22 bench uses to price verification.
Link-level faults (:class:`~repro.runtime.network.FaultPlan`) are
consulted on the send path: drops/duplicates/reorders manifest in
scheduling, and a *corrupt* fault garbles the stamped spine — which is
exactly what the verifier then catches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.integrity import AttestationStore, KeyRing, SpineVerifier
from repro.core.names import Channel, NameSupply, Principal
from repro.core.patterns import MatchAll, Pattern
from repro.core.provenance import InputEvent, OutputEvent, Provenance
from repro.core.semantics import SemanticsMode
from repro.core.values import AnnotatedValue
from repro.patterns.ast import SamplePattern
from repro.patterns.dfa import PolicyBank, PolicyEngine
from repro.patterns.nfa import NFAMatcher
from repro.runtime.metrics import DeliveryRecord, RuntimeMetrics
from repro.runtime.network import Network
from repro.runtime.simulator import Simulator
from repro.runtime.wire import (
    WIRE_V1,
    WIRE_V2,
    encode_plain,
    encode_payload,
    encode_payload_v2,
    encode_varint,
)

__all__ = ["ReceiveBranch", "PendingReceive", "ChannelManager", "Middleware"]


def _garbled(
    payload: tuple[AnnotatedValue, ...],
) -> tuple[AnnotatedValue, ...]:
    """A *corrupt* link fault's effect on an in-memory payload.

    Flips each component's most recent event between ``!`` and ``?`` —
    the smallest history mutation a bit flip could cause.  The garbled
    node is a fresh cons the middleware never attested, so paranoid
    delivery verification detects it; without verification it flows
    through silently, exactly like real corruption past a checksumless
    transport.  ε-provenance components (erased mode) pass unchanged.
    """

    garbled = []
    for value in payload:
        provenance = value.provenance
        if provenance.is_empty:
            garbled.append(value)
            continue
        head = provenance.head
        flipped = InputEvent if isinstance(head, OutputEvent) else OutputEvent
        event = flipped(head.principal, head.channel_provenance)
        garbled.append(value.with_provenance(provenance.tail.cons(event)))
    return tuple(garbled)


@dataclass(frozen=True, slots=True)
class ReceiveBranch:
    """One summand of a pattern-restricted input, runtime form."""

    patterns: tuple[Pattern, ...]
    callback: Callable[[int, tuple[AnnotatedValue, ...]], None] = field(hash=False)
    trivial: bool = field(init=False, default=False, compare=False)
    """True when every pattern is ``MatchAll`` — the plain-pi common
    case, decided once at registration so the delivery loop can admit
    without a vetting call (the counters it would have bumped by zero
    stay untouched; ``pattern_checks`` is bumped directly)."""

    def __post_init__(self) -> None:
        trivial = True
        for pattern in self.patterns:
            if type(pattern) is not MatchAll:
                trivial = False
                break
        object.__setattr__(self, "trivial", trivial)

    @property
    def arity(self) -> int:
        return len(self.patterns)


@dataclass(slots=True)
class PendingReceive:
    """A registered receiver: principal, channel view, branches."""

    principal: Principal
    channel_provenance: Provenance
    branches: tuple[ReceiveBranch, ...]
    posted_at: float
    consumed: bool = False
    actions: Optional[tuple[str, ...]] = None
    """Per-branch certificate actions (``"elide"``/``"prune"``/``"vet"``),
    or ``None`` when no certificate applies to this receiver.  Honored
    only while the middleware still holds its certificate, so revocation
    is immediate even for waiters registered before it."""


@dataclass(slots=True)
class _StoredMessage:
    payload: tuple[AnnotatedValue, ...]
    posted_at: float


class ChannelManager:
    """Rendezvous state for a single channel."""

    def __init__(self, channel: Channel, middleware: "Middleware") -> None:
        self.channel = channel
        self._middleware = middleware
        self._messages: deque[_StoredMessage] = deque()
        self._waiters: list[PendingReceive] = []
        self._consumed_count = 0
        self._scan_start = 0
        self._patterns: dict[Pattern, None] = {}
        self._has_sample = False
        self._bank: Optional[PolicyBank] = None
        self._bank_patterns: tuple[Pattern, ...] = ()

    def policy_bank(self) -> PolicyBank:
        """The fused bank over every pattern ever registered here.

        Rebuilt only when a registration introduces a pattern the
        channel has not seen — the common case of a stable protocol
        rebuilds once.  A rebuild starts the wider state vector's run
        cache cold (its first vet replays the spine through *memoized*
        transitions — the compiled DFAs and their transition tables are
        shared by the engine, so the replay is table lookups, not subset
        construction), and the superseded bank is discarded so it stops
        pinning spine nodes.
        """

        if self._bank is None:
            if self._bank_patterns:
                self._middleware.policy.discard_bank(self._bank_patterns)
            self._bank_patterns = tuple(self._patterns)
            self._bank = self._middleware.policy.bank(self._bank_patterns)
        return self._bank

    @property
    def queued_messages(self) -> int:
        return len(self._messages)

    @property
    def waiting_receivers(self) -> int:
        return sum(1 for waiter in self._waiters if not waiter.consumed)

    def post(self, payload: tuple[AnnotatedValue, ...], posted_at: float) -> None:
        middleware = self._middleware
        if middleware.verify_deliveries and not middleware.payload_verifies(
            payload
        ):
            # paranoid mode: a history that fails verification never
            # reaches a receiver.  No quarantine — at the rendezvous the
            # presenter is unknown (link corruption looks the same as a
            # garbling sender), so the message is just discarded.
            middleware.record_tamper("chain")
            return
        self._messages.append(_StoredMessage(payload, posted_at))
        self._match()

    def register(self, pending: PendingReceive) -> None:
        for branch in pending.branches:
            if branch.trivial:
                continue  # MatchAll registers nothing worth banking
            for pattern in branch.patterns:
                if pattern not in self._patterns:
                    self._patterns[pattern] = None
                    self._bank = None
                    if self._middleware.is_sample_pattern(pattern):
                        self._has_sample = True
        self._waiters.append(pending)
        self._match()

    def _match(self) -> None:
        """Deliver every (message, waiter, branch) triple that fits.

        A single pass in registration order suffices: delivery callbacks
        never re-enter the manager (nodes *schedule* continuations on the
        simulator rather than running them inline), and consuming a
        message can only disable, never enable, an earlier waiter — so
        nothing a later delivery does can unblock a waiter the pass
        already skipped.  The old implementation restarted the scan from
        the first waiter after every delivery, O(waiters²) on fan-in
        channels; this one is O(waiters) per post, with the consumed
        prefix skipped and the waiter list compacted lazily.
        """

        if not self._messages:
            return  # a registration with nothing queued cannot fire
        waiters = self._waiters
        start = self._scan_start
        while start < len(waiters) and waiters[start].consumed:
            start += 1
        self._scan_start = start
        for index in range(start, len(waiters)):
            if not self._messages:
                break
            waiter = waiters[index]
            if waiter.consumed:
                continue
            if self._try_deliver(waiter):
                self._consumed_count += 1
        if self._consumed_count * 2 > len(waiters):
            self._waiters = [w for w in waiters if not w.consumed]
            self._consumed_count = 0
            self._scan_start = 0

    def _try_deliver(self, waiter: PendingReceive) -> bool:
        middleware = self._middleware
        actions = (
            waiter.actions if middleware.certificate is not None else None
        )
        bank = (
            self.policy_bank()
            if middleware.vetting == "bank" and self._has_sample
            else None
        )
        erased = middleware.mode is SemanticsMode.ERASED
        for message_index, stored in enumerate(self._messages):
            for branch_index, branch in enumerate(waiter.branches):
                action = (
                    actions[branch_index] if actions is not None else "vet"
                )
                if action == "prune":
                    continue  # certified DEAD: can never admit anything
                if branch.arity != len(stored.payload):
                    continue
                if branch.trivial:
                    # every pattern is MatchAll: admitted by definition,
                    # and the automaton counters it would leave at zero
                    # are left at zero — only the checks are counted
                    if not erased:
                        middleware.metrics.pattern_checks += branch.arity
                elif action == "elide":
                    # certified REDUNDANT on a fully-redundant channel:
                    # the vet could only ever say yes, so skip it
                    if not erased:
                        middleware.metrics.vets_elided += branch.arity
                elif not middleware.vet(branch.patterns, stored.payload, bank):
                    continue
                del self._messages[message_index]
                waiter.consumed = True
                values = middleware.stamp_input(
                    waiter.principal, waiter.channel_provenance, stored.payload
                )
                metrics = middleware.metrics
                now = middleware.simulator.now
                if metrics.keep_delivered:
                    record = DeliveryRecord(
                        now, waiter.principal, self.channel, values, branch_index
                    )
                    metrics.record_delivery(record, now - stored.posted_at)
                else:
                    metrics.record_delivery_streaming(
                        values, now - stored.posted_at
                    )
                journal = middleware.journal
                if journal is not None:
                    journal.record_delivery(
                        now,
                        waiter.principal,
                        self.channel,
                        values,
                        branch_index,
                        now - stored.posted_at,
                    )
                observers = middleware.delivery_observers
                if observers:
                    # pure consumers (query indexing): they see exactly
                    # what the journal sees and touch no runtime state,
                    # so the delivered trace is bit-identical with or
                    # without them (gated by E24)
                    for observe in observers:
                        observe(
                            now,
                            waiter.principal,
                            self.channel,
                            values,
                            branch_index,
                        )
                branch.callback(branch_index, values)
                return True
        return False


class Middleware:
    """The trusted layer every node talks to."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        metrics: Optional[RuntimeMetrics] = None,
        mode: SemanticsMode = SemanticsMode.TRACKED,
        enforce_integrity: bool = True,
        wire_version: int = WIRE_V2,
        vetting: str = "bank",
        certificate: Optional[object] = None,
        keyring: Optional[KeyRing] = None,
        crypto: bool = True,
        verify_deliveries: bool = False,
        attestations: Optional[AttestationStore] = None,
    ) -> None:
        if wire_version not in (WIRE_V1, WIRE_V2):
            raise ValueError(f"unknown wire version {wire_version}")
        if vetting not in ("bank", "nfa"):
            raise ValueError(f"unknown vetting mode {vetting!r}")
        self.simulator = simulator
        self.network = network
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.mode = mode
        self.enforce_integrity = enforce_integrity
        self.wire_version = wire_version
        self.vetting = vetting
        self.certificate = certificate
        self.crypto = crypto and mode is not SemanticsMode.ERASED
        """Attest stamped spine nodes (HMAC over Merkle digests).  Off
        for erased runs — there is no provenance to protect — and for
        the integrity-off arm of the E22 differential."""
        self.verify_deliveries = verify_deliveries and self.crypto
        """Re-verify every payload at its rendezvous (paranoid mode)."""
        self.keyring = keyring if keyring is not None else KeyRing()
        self.attestations = (
            attestations if attestations is not None else AttestationStore()
        )
        """Tag store — callers may pass a spill-backed store (see
        :class:`~repro.core.integrity.AttestationStore`) to bound its
        in-RAM footprint on durable runs."""
        self.verifier = SpineVerifier(self.keyring, self.attestations)
        self.journal = None
        """A :class:`~repro.storage.journal.DurabilitySink` (or ``None``):
        when set, every delivery and every trust transition (quarantine,
        revocation, tamper detection) is streamed into the durable
        write-ahead journal."""
        self.delivery_observers: list = []
        """Callbacks ``(time, principal, channel, values, branch_index)``
        invoked on every delivery, after metrics and journal recording —
        the hook a :class:`~repro.query.ProvenanceIndex` streams from
        (see ``DistributedRuntime.attach_query_index``).  Observers must
        not mutate runtime state."""
        self.quarantined: set[Principal] = set()
        """A :class:`~repro.analysis.static_flow.StaticCertificate` (any
        object with ``branch_action``) authorizing check elision, or
        ``None``.  Revoked (set to ``None``) the moment an unanalyzed
        message enters the system, since its verdicts only cover the
        analyzed closed system."""
        self.policy = PolicyEngine()
        self.nfa_matcher = NFAMatcher()
        self.supply = NameSupply()
        self.router = None
        """A shard router (``repro.runtime.shards.ShardRouter``) when
        this middleware is one shard of a :class:`ShardedRuntime`, else
        ``None``.  With a router installed, sends to channels homed on
        another shard leave through it (v2 wire, per-link codecs) and
        receives resolve their rendezvous manager through it; the
        ``None`` path is byte-for-byte the unsharded fast path."""
        self._managers: dict[Channel, ChannelManager] = {}
        self._sample_types: dict[type, bool] = {}

    def is_sample_pattern(self, pattern: Pattern) -> bool:
        """``isinstance(pattern, SamplePattern)`` with a per-class cache.

        Pattern classes go through ``ABCMeta.__instancecheck__``, which
        is measurable at one call per vetted component; the class of a
        pattern decides the answer, so it is cached by class.
        """

        cls = pattern.__class__
        flag = self._sample_types.get(cls)
        if flag is None:
            flag = isinstance(pattern, SamplePattern)
            self._sample_types[cls] = flag
        return flag

    def manager(self, channel: Channel) -> ChannelManager:
        existing = self._managers.get(channel)
        if existing is None:
            existing = ChannelManager(channel, self)
            self._managers[channel] = existing
        return existing

    # -- provenance operations (the trusted tier) -------------------------

    def stamp_output(
        self,
        principal: Principal,
        channel_provenance: Provenance,
        payload: tuple[AnnotatedValue, ...],
    ) -> tuple[AnnotatedValue, ...]:
        """R-Send's provenance update: prepend ``a!κm`` to every component."""

        if self.mode is SemanticsMode.ERASED:
            return payload
        event = OutputEvent(principal, channel_provenance)
        if len(payload) == 1:
            stamped = (payload[0].record(event),)
        else:
            stamped = tuple(value.record(event) for value in payload)
        if self.crypto:
            attest = self.verifier.attest_chain
            for value in stamped:
                attest(value.provenance)
        return stamped

    def stamp_input(
        self,
        principal: Principal,
        channel_provenance: Provenance,
        payload: tuple[AnnotatedValue, ...],
    ) -> tuple[AnnotatedValue, ...]:
        """R-Recv's provenance update: prepend ``a?κm``."""

        if self.mode is SemanticsMode.ERASED:
            return payload
        event = InputEvent(principal, channel_provenance)
        if len(payload) == 1:
            stamped = (payload[0].record(event),)
        else:
            stamped = tuple(value.record(event) for value in payload)
        if self.crypto:
            attest = self.verifier.attest_chain
            for value in stamped:
                attest(value.provenance)
        return stamped

    # -- integrity (the cryptographic tier) --------------------------------

    def adopt(self, payload: tuple[AnnotatedValue, ...]) -> None:
        """Attest histories the middleware itself constructed.

        Deploy-time message literals (and any provenance the system text
        annotates onto values) never pass through a stamp, yet they are
        the trusted layer's own doing — adopting them records tags down
        their chains so later verification treats them as genuine.
        """

        if not self.crypto:
            return
        attest = self.verifier.attest_chain
        for value in payload:
            attest(value.provenance)

    def payload_verifies(self, payload: tuple[AnnotatedValue, ...]) -> bool:
        """Verify every component's history; fold cost into metrics."""

        verifier = self.verifier
        checked = verifier.nodes_checked
        hits = verifier.cache_hits
        ok = True
        for value in payload:
            if not verifier.verify(value.provenance):
                ok = False
                break
        self.metrics.record_verify(
            verifier.nodes_checked - checked, verifier.cache_hits - hits
        )
        return ok

    def ingress_auth_data(
        self, channel: Channel, payload: tuple[AnnotatedValue, ...]
    ) -> bytes:
        """Canonical bytes a principal signs to authorize an injection."""

        parts = [channel.name.encode("utf-8")]
        for value in payload:
            parts.append(value.provenance.digest)
        return b"|".join(parts)

    def _punish(self, offender: Optional[Principal]) -> None:
        """Graceful degradation after detected tampering.

        Quarantines the *presenting* principal (never the principal a
        forged history claims for itself) and revokes any static
        certificate — its verdicts assumed only analyzed traffic, so
        full vetting resumes for everything still in flight.
        """

        if offender is not None and offender not in self.quarantined:
            self.quarantined.add(offender)
            self.metrics.principals_quarantined += 1
            if self.journal is not None:
                self.journal.note("quarantine", offender.name)
        if self.certificate is not None:
            self.certificate = None
            self.metrics.certificates_revoked += 1
            if self.journal is not None:
                self.journal.note("revoke", "certificate")

    def record_tamper(self, kind: str) -> None:
        """Count a tamper detection and journal it when durable."""

        self.metrics.record_tamper(kind)
        if self.journal is not None:
            self.journal.note("tamper", kind)

    def vet(
        self,
        patterns: tuple[Pattern, ...],
        payload: tuple[AnnotatedValue, ...],
        bank: Optional[PolicyBank] = None,
    ) -> bool:
        """Pattern vetting ``κv ⊨ π`` per component (skipped when erased).

        Components are vetted left to right, each counted in
        ``metrics.pattern_checks``; the first refusal is attributed to
        its pattern (``metrics.rejections_by_pattern``) and stops the
        scan.  ``bank`` — normally the channel's fused
        :class:`PolicyBank` — lets every sample-pattern decision ride
        the shared incremental state vector; without one, sample
        patterns still go through the middleware's own engine.
        """

        if self.mode is SemanticsMode.ERASED:
            return True
        metrics = self.metrics
        engine = self.policy
        nfa = self.nfa_matcher
        transitions_before = engine.transitions_taken + nfa.events_stepped
        hits_before = engine.run_cache_hits + nfa.decided_hits
        admitted = True
        for pattern, value in zip(patterns, payload):
            metrics.pattern_checks += 1
            if not self._admits(pattern, value.provenance, bank):
                metrics.record_rejection(pattern)
                admitted = False
                break
        metrics.vet_transitions += (
            engine.transitions_taken + nfa.events_stepped - transitions_before
        )
        metrics.vet_cache_hits += (
            engine.run_cache_hits + nfa.decided_hits - hits_before
        )
        return admitted

    def _admits(
        self,
        pattern: Pattern,
        provenance: Provenance,
        bank: Optional[PolicyBank],
    ) -> bool:
        if self.is_sample_pattern(pattern):
            if self.vetting == "nfa":
                return self.nfa_matcher.matches(provenance, pattern)
            if bank is not None:
                return bank.admits(provenance, pattern)
            return self.policy.matches(provenance, pattern)
        return pattern.matches(provenance)

    def vetting_stats(self) -> dict[str, int]:
        """Work counters of the active vetting path (for benches)."""

        stats = self.policy.stats()
        stats["nfa_events_stepped"] = self.nfa_matcher.events_stepped
        return stats

    # -- node-facing API ---------------------------------------------------

    def send(
        self,
        principal: Principal,
        channel: AnnotatedValue,
        payload: tuple[AnnotatedValue, ...],
    ) -> None:
        """Asynchronous output: stamp, ship; byte accounting deferred.

        Latency never depends on size, so serialization exists only to
        price the message for E13 — the sizer thunk runs when (and only
        when) someone reads a byte metric.  Honest accounting still:
        provenance bytes are whatever the chosen codec ships beyond the
        plain parts (under v2 shared subtrees are shipped once, so the
        metadata tax reflects the DAG size).
        """

        if not isinstance(channel.value, Channel):
            raise TypeError(f"cannot send on non-channel {channel.value!r}")
        if principal in self.quarantined:
            self.metrics.quarantined_drops += 1
            return
        stamped = self.stamp_output(principal, channel.provenance, payload)
        router = self.router
        if router is not None and not router.is_local(channel.value):
            router.send_remote(principal, channel.value, stamped)
            return
        metrics = self.metrics
        if metrics.detailed:
            encode = (
                encode_payload
                if self.wire_version == WIRE_V1
                else encode_payload_v2
            )

            def sizes() -> tuple[int, int]:
                total_bytes = len(encode(stamped))
                plain_bytes = len(encode_varint(len(stamped))) + sum(
                    len(encode_plain(value.value)) for value in stamped
                )
                return plain_bytes, total_bytes - plain_bytes

            metrics.record_send(sizes)
        else:
            metrics.record_send()
        decision = self.network.fault_for(principal, channel.value)
        if decision.drop:
            metrics.faults_dropped += 1
            return
        if decision.corrupt:
            metrics.faults_corrupted += 1
            stamped = _garbled(stamped)
        if decision.extra_delay:
            metrics.faults_reordered += 1
        destination = self.manager(channel.value)
        posted_at = self.simulator.now
        self.network.deliver(
            lambda: destination.post(stamped, posted_at),
            sender=principal,
            channel=channel.value,
            extra_delay=decision.extra_delay,
        )
        if decision.duplicate:
            metrics.faults_duplicated += 1
            self.network.deliver(
                lambda: destination.post(stamped, posted_at),
                sender=principal,
                channel=channel.value,
            )

    def receive(
        self,
        principal: Principal,
        channel: AnnotatedValue,
        branches: tuple[ReceiveBranch, ...],
    ) -> PendingReceive:
        """Pattern-restricted input: register and wait."""

        if not isinstance(channel.value, Channel):
            raise TypeError(f"cannot receive on non-channel {channel.value!r}")
        actions = None
        if self.certificate is not None:
            actions = self._branch_actions(principal, channel.value, branches)
        pending = PendingReceive(
            principal,
            channel.provenance,
            branches,
            self.simulator.now,
            actions=actions,
        )
        router = self.router
        if router is not None and not router.is_local(channel.value):
            # inline mode resolves the home shard's manager (same
            # process); process mode raises — a callback cannot cross
            # an OS process boundary, so receivers must be co-located
            # with their channel's home shard
            router.remote_manager(channel.value).register(pending)
        else:
            self.manager(channel.value).register(pending)
        return pending

    def _branch_actions(
        self,
        principal: Principal,
        channel: Channel,
        branches: tuple[ReceiveBranch, ...],
    ) -> Optional[tuple[str, ...]]:
        """Certificate actions for a receiver, ``None`` when all-vet.

        Site identity mirrors the analysis'
        :class:`~repro.analysis.static_flow.SiteKey` rendering; sites the
        analysis never saw (restricted channels run under fresh names)
        miss the lookup and fall back to vetting.
        """

        certificate = self.certificate
        actions = []
        interesting = False
        for index, branch in enumerate(branches):
            patterns = ", ".join(str(p) for p in branch.patterns)
            action = certificate.branch_action(
                principal.name, channel.name, index, patterns
            )
            if action != "vet":
                interesting = True
                if action == "prune":
                    self.metrics.branches_pruned += 1
            actions.append(action)
        return tuple(actions) if interesting else None

    def inject_raw(
        self,
        channel: Channel,
        payload: tuple[AnnotatedValue, ...],
        signed: bool = False,
        sender: Optional[Principal] = None,
        auth: Optional[tuple[Principal, bytes]] = None,
    ) -> bool:
        """The adversary's door: post a message without the send path.

        With integrity enforcement (default) an injection lands only
        through an authorized door — ``signed=True`` (the operator's
        debugging bypass) or a valid ``auth`` pair ``(principal, tag)``
        where ``tag`` HMACs :meth:`ingress_auth_data` under that
        principal's key.  Everything else is blocked and *classified*:

        * all-ε provenance → an unauthenticated knock (counted in
          ``forgeries_blocked`` only — not tampering, so any static
          certificate survives);
        * chain-valid history → a **replay** of genuine provenance
          through the wrong door (``replays_blocked``);
        * chain-invalid history → a **forgery** (``tamper_detected``).

        Replays and forgeries are detected tampering: the presenting
        ``sender`` is quarantined and the certificate revoked.  An
        authorized door is still chain-verified — a colluder or garbling
        principal signing its injection gets caught there and punished.
        Disabling enforcement models the convention-based encoding of the
        paper's introduction, where nothing stops ``b`` from claiming
        ``a`` sent the value.
        """

        metrics = self.metrics
        if sender is not None and sender in self.quarantined:
            metrics.quarantined_drops += 1
            return False
        if self.enforce_integrity:
            authorized = signed
            presenter = sender
            if not authorized and auth is not None:
                claimed, tag = auth
                presenter = claimed if sender is None else sender
                if claimed in self.quarantined:
                    metrics.quarantined_drops += 1
                    return False
                authorized = self.keyring.verify_payload(
                    claimed, self.ingress_auth_data(channel, payload), tag
                )
            if not authorized:
                metrics.forgeries_blocked += 1
                if self.crypto and any(
                    not value.provenance.is_empty for value in payload
                ):
                    if self.payload_verifies(payload):
                        metrics.replays_blocked += 1
                        self.record_tamper("replay")
                    else:
                        self.record_tamper("forge")
                    self._punish(presenter)
                return False
            if self.crypto and not self.payload_verifies(payload):
                self.record_tamper("chain")
                self._punish(presenter)
                return False
        self.metrics.forgeries_accepted += 1
        # the injected message was never part of the analyzed system, so
        # any static certificate no longer covers what can arrive —
        # revoke before the post so this delivery is already fully vetted
        self.certificate = None
        self.manager(channel).post(payload, self.simulator.now)
        return True
