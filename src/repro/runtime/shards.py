"""Sharded multi-core runtime: partitioned simulators, one merged trace.

The paper's middleware is distributed by construction — each principal's
middleware stamps and vets independently, and the only shared state is
the channel rendezvous — so partitioning *principals* across shards is
semantics-preserving.  :class:`ShardedRuntime` does exactly that: a
deterministic :class:`Partitioner` assigns every principal (and every
channel's rendezvous manager, its *home*) to one of N shards, each shard
a full :class:`~repro.runtime.runtime.DistributedRuntime` stack —
simulator, network, middleware, nodes, metrics — and cross-shard sends
travel as real wire bytes.

Two execution modes, one trace contract:

* ``shard_mode="inline"`` — all shards in this process, driven by a
  *conductor* that always runs the globally least ``(time, sequence)``
  event.  Shards share one :class:`~repro.runtime.simulator.SequenceSource`
  (and one name supply), so the global event order — and therefore the
  delivered trace — is **bit-identical to the single-shard run for any
  system and any partition**, racy rendezvous included.  This is the
  reference mode the property tests exercise against
  ``workloads/random_systems``.

* ``shard_mode="process"`` — one OS process per shard
  (``multiprocessing``), synchronized by a conservative window barrier:
  every cross-shard link declares a ``lookahead`` (a lower bound on its
  latency), shards run ``lookahead/2``-wide windows in parallel, and
  envelopes collected at each barrier are injected — decoded in
  per-link FIFO order, scheduled by Lamport-tie-broken arrival time —
  before the window that could observe them.  A message sent at ``t``
  arrives at ``t + 2W`` or later, and every event a window runs is at
  most ``W`` past the barrier that opened it, so no arrival can ever be
  late.  For race-free workloads (the gated fan-out shapes) the merged
  delivered trace is bit-identical to ``shards=1``; fresh names drawn
  at runtime (restrictions) are shard-local in this mode and may be
  α-renamed relative to the single-shard run.

Cross-shard sends are serialized with the v2 wire format through
per-directed-link :class:`~repro.runtime.wire.Codec` pairs whose
back-reference tables *resume* across messages — a value's provenance
ships only the suffix its link has not already carried, and the table
ids are stable for the link's lifetime, so spines re-intern consistently
on the receiving shard.  Latency jitter comes from
:class:`~repro.runtime.network.KeyedLatencySampler` (a stable digest of
seed, sender, channel and per-link ordinal), never from a per-shard
generator stream — the draw a message gets is independent of the
partition, which is what makes the ``shards=N`` vs ``shards=1``
differential exact.

``delivered_trace()`` merges the per-shard delivery records into one
canonical global trace ordered by ``(time, channel, per-channel
ordinal)`` — each channel is homed on exactly one shard, so per-channel
order is total — and ``metrics_summary()`` composes the per-shard
:meth:`~repro.runtime.metrics.RuntimeMetrics.summary` dicts with
:meth:`~repro.runtime.metrics.RuntimeMetrics.merge`.
``benchmarks/bench_shard_scaling.py`` (E21) gates the differential and
the process-mode throughput ratio.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time as time_module
import traceback
import zlib
from dataclasses import dataclass, field
from math import floor
from time import perf_counter
from typing import Any, Callable, Optional

from repro.core.congruence import NormalForm, all_system_names, normalize
from repro.core.errors import ShardLostError, SimulationError, WireFormatError
from repro.core.names import Channel, NameSupply, Principal
from repro.core.semantics import SemanticsMode
from repro.core.system import Located, Message, System
from repro.runtime.metrics import DeliveryRecord, RuntimeMetrics
from repro.runtime.network import (
    FaultInjector,
    FaultPlan,
    KeyedLatencySampler,
    LatencyModel,
    Topology,
)
from repro.runtime.runtime import DistributedRuntime
from repro.runtime.simulator import SequenceSource
from repro.runtime.wire import Codec, encode_plain, encode_varint

__all__ = [
    "Partitioner",
    "ShardPlan",
    "ShardRouter",
    "ShardedRuntime",
    "WireEnvelope",
]


def _stable_shard(name: str, n_shards: int) -> int:
    """``crc32(name) % n`` — stable across processes and Python runs.

    The builtin ``hash`` is randomized per process, which would home
    channels differently in every worker; CRC32 is fast, stable, and
    spreads principal names well enough for round-robin-ish balance.
    """

    return zlib.crc32(name.encode("utf-8")) % n_shards


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """An explicit placement: overrides plus the links' latency floor.

    Workloads that know their communication structure (see
    ``WideFanoutWorkload.shard_plan``) publish one of these so regions
    stay co-located and the conservative barrier gets a truthful
    ``lookahead`` (a lower bound on every cross-shard link's latency).
    """

    principals: dict[str, int] = field(default_factory=dict)
    channels: dict[str, int] = field(default_factory=dict)
    lookahead: Optional[float] = None


class Partitioner:
    """Deterministic principal→shard and channel→home assignment."""

    def __init__(
        self,
        n_shards: int,
        principal_overrides: Optional[dict[str, int]] = None,
        channel_overrides: Optional[dict[str, int]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.principal_overrides = dict(principal_overrides or {})
        self.channel_overrides = dict(channel_overrides or {})
        for name, shard in (
            *self.principal_overrides.items(),
            *self.channel_overrides.items(),
        ):
            if not 0 <= shard < n_shards:
                raise ValueError(
                    f"override {name!r} -> shard {shard} out of range "
                    f"for {n_shards} shards"
                )

    def shard_of(self, principal: Principal) -> int:
        """The shard hosting ``principal``'s node and middleware."""

        override = self.principal_overrides.get(principal.name)
        if override is not None:
            return override
        return _stable_shard(principal.name, self.n_shards)

    def home_of(self, channel: Channel) -> int:
        """The shard hosting ``channel``'s rendezvous manager."""

        override = self.channel_overrides.get(channel.name)
        if override is not None:
            return override
        return _stable_shard(channel.name, self.n_shards)


@dataclass(frozen=True, slots=True)
class WireEnvelope:
    """One cross-shard message as it travels between simulators.

    ``data`` is a digest-sealed *frame* (:meth:`Codec.encode_frame`) in
    v2 back-reference bytes *relative to the link codec's history* —
    decoding requires every earlier envelope of the same ``(source,
    target)`` link first (``seq`` orders them, and the receiver enforces
    it: a repeated ``seq`` is a wire replay, a gap is truncation, and
    either retires the link).  ``tags`` carries the attestation tag of
    each spine node the frame ships for the first time, positionally
    aligned with the decoder's construction order, so the receiving
    shard can re-verify the whole history on ingest.  ``lamport`` is the
    sending shard's logical clock, used to tie-break equal arrival
    instants causally at injection.
    """

    source: int
    target: int
    seq: int
    channel: str
    data: bytes
    send_time: float
    arrival_time: float
    lamport: int
    tags: tuple = ()


class ShardRouter:
    """One shard's door to the rest of the mesh.

    Installed as ``middleware.router``; the middleware asks
    :meth:`is_local` on every send and receive.  Remote sends are
    encoded through the link's resumed :class:`Codec` and either handed
    to the inline hub (same process: decoded and scheduled on the home
    shard immediately) or parked in the outbox for the next barrier
    (process mode).  Remote *receives* only work inline — a delivery
    callback cannot cross an OS process boundary — so process mode
    requires receivers to be co-located with their channel's home.
    """

    def __init__(
        self,
        index: int,
        partitioner: Partitioner,
        runtime: DistributedRuntime,
        hub: Optional["ShardedRuntime"] = None,
        lookahead: Optional[float] = None,
    ) -> None:
        self.index = index
        self.partitioner = partitioner
        self.runtime = runtime
        self.hub = hub
        self.lookahead = lookahead
        self.lamport = 0
        self.cross_shard_sent = 0
        self.cross_shard_received = 0
        self._link_seq: dict[int, int] = {}
        self._expected_seq: dict[int, int] = {}
        self._poisoned: set[int] = set()
        self._encoders: dict[int, Codec] = {}
        self._decoders: dict[int, Codec] = {}
        self._outbox: list[WireEnvelope] = []

    def is_local(self, channel: Channel) -> bool:
        return self.partitioner.home_of(channel) == self.index

    def remote_manager(self, channel: Channel):
        """The home shard's manager — inline mode only."""

        if self.hub is None:
            raise SimulationError(
                f"shard {self.index} cannot receive on {channel.name!r}: "
                f"the channel is homed on shard "
                f"{self.partitioner.home_of(channel)} and delivery "
                f"callbacks cannot cross process boundaries — co-locate "
                f"the receiver with the channel (see ShardPlan) or use "
                f"shard_mode='inline'"
            )
        home = self.partitioner.home_of(channel)
        return self.hub.shard(home).middleware.manager(channel)

    def send_remote(
        self,
        principal: Principal,
        channel: Channel,
        payload: tuple,
    ) -> None:
        """Serialize, stamp, and ship one cross-shard send.

        Fault injection happens here, not in the transport: *drop* is
        decided **before** the frame is encoded — a dropped message must
        never advance the link codec's shared history, or every later
        frame would desync — and *corrupt* flips one frame byte after
        encoding, which the receiver's digest check is guaranteed to
        catch (the link is then poisoned, the realistic fate of a
        corrupted resumed stream).
        """

        runtime = self.runtime
        network = runtime.network
        metrics = runtime.metrics
        model = network.latency_for(principal, channel)
        delay = network.sample_latency(model, principal, channel)
        if self.hub is None and (
            self.lookahead is None or delay < self.lookahead
        ):
            raise SimulationError(
                f"cross-shard send {principal.name}->{channel.name} has "
                f"latency {delay} below the declared lookahead "
                f"{self.lookahead}: the conservative barrier would be "
                f"unsound — declare a truthful lookahead (<= every "
                f"cross-shard link's minimum latency)"
            )
        decision = network.fault_for(principal, channel)
        if decision.drop:
            metrics.record_send()
            metrics.faults_dropped += 1
            return
        home = self.partitioner.home_of(channel)
        codec = self._encoders.get(home)
        if codec is None:
            codec = self._encoders[home] = Codec()
        data, new_nodes = codec.encode_frame(payload)
        middleware = runtime.middleware
        tags: tuple = ()
        if middleware.crypto:
            store = middleware.attestations
            tags = tuple(store.tag(node) for node in new_nodes)
        if decision.corrupt:
            metrics.faults_corrupted += 1
            flip = bytearray(data)
            flip[len(flip) // 2] ^= 0x01
            data = bytes(flip)
        if decision.extra_delay:
            metrics.faults_reordered += 1
            delay += decision.extra_delay
        if metrics.detailed:
            # honest accounting: these are the bytes that actually
            # crossed the link, back-references included — resumed
            # tables make repeat provenance nearly free; the frame
            # seal (length prefix + digest) counts as metadata
            plain_bytes = len(encode_varint(len(payload))) + sum(
                len(encode_plain(value.value)) for value in payload
            )
            provenance_bytes = max(len(data) - plain_bytes, 0)
            metrics.record_send(lambda: (plain_bytes, provenance_bytes))
        else:
            metrics.record_send()
        self.lamport += 1
        seq = self._link_seq.get(home, 0)
        self._link_seq[home] = seq + 1
        send_time = runtime.simulator.now
        envelope = WireEnvelope(
            source=self.index,
            target=home,
            seq=seq,
            channel=channel.name,
            data=data,
            send_time=send_time,
            arrival_time=send_time + delay,
            lamport=self.lamport,
            tags=tags,
        )
        self.cross_shard_sent += 1
        copies = 2 if decision.duplicate else 1
        if decision.duplicate:
            metrics.faults_duplicated += 1
        for _ in range(copies):
            if self.hub is not None:
                self.hub.shard(home).middleware.router.ingest([envelope])
            else:
                self._outbox.append(envelope)

    def drain_outbox(self) -> list[WireEnvelope]:
        outgoing, self._outbox = self._outbox, []
        return outgoing

    def _poison_link(self, source: int, reason: str) -> None:
        """Retire a link whose stream can no longer be trusted.

        A failed frame (bad digest, bad chain, seq gap) may have already
        polluted the resumed codec tables, so everything after it on the
        same link is undecodable anyway — the honest response is to stop
        listening.  Honest links never trip this: drops are decided
        before encoding, so even a lossy fault plan keeps seq dense.
        """

        if source not in self._poisoned:
            self._poisoned.add(source)
            self.runtime.metrics.record_tamper("wire")
            self.runtime.metrics.principals_quarantined += 1

    def ingest(self, envelopes: list[WireEnvelope]) -> None:
        """Decode, verify, and schedule a batch of arrivals.

        Two passes: decoding follows per-link ``seq`` order (the codec
        tables are a shared history — frames only make sense in encode
        order), while scheduling follows ``(arrival, lamport, link,
        seq)`` so simultaneous arrivals from different links enqueue in
        a deterministic, causally consistent order.

        This is the trust boundary of the mesh: each frame's digest seal
        is checked (corruption → link poisoned), repeated ``seq``\\ s are
        blocked as wire replays, attestation tags are recorded for the
        frame's new spine nodes, and — when crypto is on — every
        payload's whole history is re-verified (O(new hops) via the
        verdict cache) before it may rendezvous.
        """

        middleware = self.runtime.middleware
        metrics = self.runtime.metrics
        decoded: list[tuple[WireEnvelope, tuple]] = []
        for envelope in sorted(envelopes, key=lambda e: (e.source, e.seq)):
            source = envelope.source
            if source in self._poisoned:
                metrics.quarantined_drops += 1
                continue
            expected = self._expected_seq.get(source, 0)
            if envelope.seq < expected:
                # an exact repeat of history the link already carried:
                # decoding it again would desync the stream — block it
                metrics.replays_blocked += 1
                metrics.record_tamper("replay")
                continue
            if envelope.seq > expected:
                self._poison_link(source, "sequence gap")
                continue
            codec = self._decoders.get(source)
            if codec is None:
                codec = self._decoders[source] = Codec()
            try:
                payload, _, new_nodes = codec.decode_frame(envelope.data)
            except WireFormatError:
                self._poison_link(source, "frame rejected")
                continue
            self._expected_seq[source] = expected + 1
            if middleware.crypto:
                tags = envelope.tags
                if len(tags) != len(new_nodes):
                    self._poison_link(source, "attestation mismatch")
                    continue
                store = middleware.attestations
                for node, tag in zip(new_nodes, tags):
                    if tag is not None:
                        store.record(node, tag)
                if not middleware.payload_verifies(payload):
                    self._poison_link(source, "chain verification failed")
                    continue
            if self.lamport <= envelope.lamport:
                self.lamport = envelope.lamport + 1
            decoded.append((envelope, payload))
        decoded.sort(
            key=lambda pair: (
                pair[0].arrival_time,
                pair[0].lamport,
                pair[0].source,
                pair[0].seq,
            )
        )
        middleware = self.runtime.middleware
        network = self.runtime.network
        for envelope, payload in decoded:
            manager = middleware.manager(Channel(envelope.channel))
            network.deliver_at(
                lambda m=manager, p=payload, t=envelope.send_time: m.post(p, t),
                envelope.arrival_time,
            )
            self.cross_shard_received += 1


# ---------------------------------------------------------------------------
# Deployment: one normal-form walk, single-shard group boundaries
# ---------------------------------------------------------------------------


def _deploy_partitioned(
    nf: NormalForm,
    partitioner: Partitioner,
    shard_lookup: Callable[[int], Optional[DistributedRuntime]],
) -> None:
    """Place a normal form's components on their owning shards.

    The walk preserves the *single-shard* grouping exactly: consecutive
    components of one principal form one ``spawn_group``, and a group
    breaks wherever the unsharded walk would have broken it — even when
    the interrupting component belongs to another shard.  Group
    boundaries decide how many scheduler events deployment costs, so
    keeping them identical is part of the inline bit-identity argument.
    ``shard_lookup`` returns ``None`` for shards this caller does not
    host (process-mode workers walk the full normal form and deploy
    only their slice).
    """

    group_principal: Optional[Principal] = None
    group: list = []

    def flush() -> None:
        nonlocal group
        if group_principal is not None and group:
            runtime = shard_lookup(partitioner.shard_of(group_principal))
            if runtime is not None:
                runtime.node(group_principal).spawn_group(group)
        group = []

    for component in nf.components:
        if isinstance(component, Located):
            if component.principal != group_principal:
                flush()
                group_principal = component.principal
            group.append(component.process)
        elif isinstance(component, Message):
            flush()
            group_principal = None
            runtime = shard_lookup(partitioner.home_of(component.channel))
            if runtime is not None:
                # deploy-time message literals are the middleware's own
                # construction: adopt (attest) their histories so
                # integrity verification treats them as genuine
                runtime.middleware.adopt(component.payload)
                runtime.middleware.manager(component.channel).post(
                    component.payload, runtime.simulator.now
                )
    flush()


# ---------------------------------------------------------------------------
# Process mode: picklable spec + worker loop
# ---------------------------------------------------------------------------


@dataclass
class _ShardSpec:
    """Everything a worker needs to rebuild its shard, all picklable.

    Systems and builder references both pickle; topology closures do
    not, which is why builder-based deployment re-runs the (pure)
    builder worker-side instead of shipping the workload object.
    """

    index: int
    n_shards: int
    seed: int
    window: float
    lookahead: float
    principal_overrides: dict[str, int]
    channel_overrides: dict[str, int]
    system: Optional[System]
    builder: Optional[Callable[..., Any]]
    builder_kwargs: dict[str, Any]
    latency: LatencyModel
    mode: SemanticsMode
    enforce_integrity: bool
    replication_budget: int
    processing_delay: float
    wire_version: int
    vetting: str
    scheduler: str
    detailed_metrics: bool
    metrics_retention: Optional[int]
    batch_limit: Optional[int]
    crypto: bool
    verify_deliveries: bool
    fault_plan: Optional[FaultPlan]
    collect_trace: bool
    durable_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    recover: bool = False
    """Set on a replacement worker: wipe and rebuild the delivery
    record by replaying the window WAL, and never draw process faults
    (at most one injected kill per shard per run)."""


def _build_worker_shard(spec: _ShardSpec):
    """(runtime, router, partitioner, normal form) for one worker."""

    if spec.builder is not None:
        workload = spec.builder(**spec.builder_kwargs)
        system = getattr(workload, "system", workload)
        topology = getattr(workload, "topology", None)
    else:
        system = spec.system
        topology = None
    partitioner = Partitioner(
        spec.n_shards, spec.principal_overrides, spec.channel_overrides
    )
    durable = None
    if spec.durable_dir:
        from repro.storage.segments import DurableStore

        durable = DurableStore(spec.durable_dir)
        if spec.recover:
            # the killed incarnation's record (flushed or torn) is
            # discarded wholesale; replaying the window WAL rebuilds it
            durable.reset_record()
        else:
            # fresh deployment: a reused directory must not leak a
            # previous run's WAL or record into a later recovery
            durable.wipe()
    runtime = DistributedRuntime(
        seed=spec.seed,
        latency=spec.latency,
        mode=spec.mode,
        enforce_integrity=spec.enforce_integrity,
        replication_budget=spec.replication_budget,
        processing_delay=spec.processing_delay,
        wire_version=spec.wire_version,
        vetting=spec.vetting,
        scheduler=spec.scheduler,
        topology=topology,
        detailed_metrics=spec.detailed_metrics,
        metrics_retention=spec.metrics_retention,
        batch_limit=spec.batch_limit,
        crypto=spec.crypto,
        verify_deliveries=spec.verify_deliveries,
        fault_plan=spec.fault_plan,
        latency_sampler=KeyedLatencySampler(spec.seed),
        durable=durable,
    )
    router = ShardRouter(
        spec.index, partitioner, runtime, hub=None, lookahead=spec.lookahead
    )
    runtime.middleware.router = router
    runtime.middleware.supply.reserve(all_system_names(system))
    nf = normalize(system)
    return runtime, router, partitioner, nf


def _shard_worker(conn, spec: _ShardSpec) -> None:
    """One OS process: build, deploy, then serve barrier windows.

    Durable shards journal every window write-ahead (boundary, budget,
    ingested envelopes) before executing it, and checkpoint the
    delivery record every ``checkpoint_every`` windows.  When the fault
    plan carries ``kill``/``torn`` process faults, the worker draws
    deterministically per window and SIGKILLs *itself* mid-window (torn
    first truncates the WAL tail mid-record) — the conductor then
    respawns it with ``recover=True``, and this function replays the
    WAL from ``t = 0`` to rebuild the exact pre-crash state before
    rejoining the barrier.
    """

    try:
        runtime, router, partitioner, nf = _build_worker_shard(spec)
        _deploy_partitioned(
            nf,
            partitioner,
            lambda shard: runtime if shard == spec.index else None,
        )
        simulator = runtime.simulator

        def next_time() -> Optional[float]:
            key = simulator.next_event_key()
            return None if key is None else key[0]

        windows = None
        windows_done = 0
        process_faults = None
        plan = spec.fault_plan
        if plan is not None and plan.has_process_faults and not spec.recover:
            process_faults = FaultInjector(plan, spec.seed)

        def maybe_checkpoint() -> None:
            if (
                spec.checkpoint_every
                and runtime.durability is not None
                and windows_done % spec.checkpoint_every == 0
            ):
                runtime.checkpoint()

        if runtime.durable is not None:
            from repro.storage.journal import (
                WindowJournal,
                read_window_journal,
            )

            if runtime.durable.read_manifest() is None:
                runtime.durable.write_manifest(
                    {
                        "format": 1,
                        "shard": spec.index,
                        "shards": spec.n_shards,
                        "seed": spec.seed,
                        "window": spec.window,
                        "lookahead": spec.lookahead,
                        "checkpoint_every": spec.checkpoint_every,
                    }
                )
            replay_count = 0
            replayed_reply = None
            if spec.recover:
                entries, _ = read_window_journal(
                    runtime.durable.windows_path()
                )
                for entry in entries:
                    if entry.envelopes:
                        router.ingest(list(entry.envelopes))
                    events = simulator.run(
                        until=entry.boundary, max_events=entry.budget
                    )
                    replayed_reply = (
                        "done",
                        events,
                        next_time(),
                        router.drain_outbox(),
                    )
                    replay_count += 1
                    windows_done += 1
                    maybe_checkpoint()
                runtime.durability.flush()
            # WindowJournal repairs any torn tail before appending
            windows = WindowJournal(runtime.durable.windows_path())
            if spec.recover:
                conn.send(("recovered", replay_count, replayed_reply))
            else:
                conn.send(("ready", next_time()))
        else:
            conn.send(("ready", next_time()))
        barrier_stall = 0.0
        while True:
            wait_start = perf_counter()
            message = conn.recv()
            barrier_stall += perf_counter() - wait_start
            kind = message[0]
            if kind == "window":
                _, until, envelopes, budget = message
                fault = None
                if process_faults is not None:
                    fault = process_faults.process_fault(
                        spec.index, windows_done
                    )
                    if fault == "torn" and windows is None:
                        # nothing to tear without a WAL; a plain kill
                        # still exercises the ShardLostError path
                        fault = "kill"
                if windows is not None:
                    windows.record(until, budget, envelopes)
                if fault == "torn":
                    from repro.storage.segments import torn_truncate

                    windows.close()
                    torn_truncate(runtime.durable.windows_path())
                    os.kill(os.getpid(), signal.SIGKILL)
                if envelopes:
                    router.ingest(envelopes)
                if fault == "kill":
                    # crash lands mid-window: run roughly half of it,
                    # then die without flushing anything
                    midpoint = simulator.now + (until - simulator.now) / 2
                    if midpoint > simulator.now:
                        simulator.run(until=midpoint, max_events=budget)
                    os.kill(os.getpid(), signal.SIGKILL)
                events = simulator.run(until=until, max_events=budget)
                windows_done += 1
                if runtime.durability is not None:
                    runtime.durability.flush()
                    maybe_checkpoint()
                conn.send(
                    ("done", events, next_time(), router.drain_outbox())
                )
            elif kind == "finish":
                if runtime.durability is not None:
                    runtime.durability.close()
                if windows is not None:
                    windows.close()
                metrics = runtime.metrics
                result = {
                    "summary": metrics.summary(),
                    "delivered": (
                        list(metrics.delivered) if spec.collect_trace else []
                    ),
                    "events_processed": simulator.events_processed,
                    "deliveries": metrics.deliveries,
                    "messages_sent": metrics.messages_sent,
                    "threads_spawned": runtime.threads_spawned(),
                    "blocked_threads": runtime.blocked_threads(),
                    "messages_in_flight": runtime.network.messages_in_flight,
                    "cross_shard_sent": router.cross_shard_sent,
                    "cross_shard_received": router.cross_shard_received,
                    "barrier_stall_seconds": barrier_stall,
                    "now": simulator.now,
                }
                conn.send(("result", result))
                conn.close()
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown barrier command {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


class ShardedRuntime:
    """N partitioned runtimes presenting one deterministic run.

    Usage, inline (general: any system, any partition)::

        runtime = ShardedRuntime(shards=4, seed=7)
        runtime.deploy(system)
        runtime.run()
        trace = runtime.delivered_trace()

    Usage, process mode (real parallelism; receivers co-located with
    their channels' homes, cross-shard links slower than ``lookahead``)::

        plan = workload.shard_plan(4)
        runtime = ShardedRuntime(shards=4, shard_mode="process",
                                 plan=plan, metrics_retention=0)
        runtime.deploy_builder(wide_fanout, n_regions=8, ...)
        runtime.run()

    ``shards=1`` is the degenerate mesh — no cross-shard traffic, run
    directly on the single simulator — and is the baseline every
    differential compares against (it uses the same keyed latency
    sampler, so its draws match the partitioned runs draw for draw).
    """

    def __init__(
        self,
        shards: int,
        shard_mode: str = "inline",
        seed: int = 0,
        plan: Optional[ShardPlan] = None,
        principal_overrides: Optional[dict[str, int]] = None,
        channel_overrides: Optional[dict[str, int]] = None,
        lookahead: Optional[float] = None,
        latency: LatencyModel = LatencyModel(),
        mode: SemanticsMode = SemanticsMode.TRACKED,
        enforce_integrity: bool = True,
        replication_budget: int = 4,
        processing_delay: float = 0.0,
        wire_version: int = 2,
        vetting: str = "bank",
        scheduler: str = "runq",
        detailed_metrics: bool = True,
        metrics_retention: Optional[int] = None,
        batch_limit: Optional[int] = None,
        crypto: bool = True,
        verify_deliveries: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        start_method: Optional[str] = None,
        durable_dir=None,
        checkpoint_every: Optional[int] = None,
        recovery_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if shard_mode not in ("inline", "process"):
            raise ValueError(f"unknown shard_mode {shard_mode!r}")
        if plan is not None:
            principal_overrides = dict(plan.principals)
            channel_overrides = dict(plan.channels)
            if lookahead is None:
                lookahead = plan.lookahead
        if lookahead is None:
            lookahead = latency.base
        if shard_mode == "process" and shards > 1 and lookahead <= 0:
            raise ValueError(
                "process mode needs a positive lookahead (a lower bound "
                "on every cross-shard link's latency) for the "
                "conservative barrier to make progress"
            )
        self.n_shards = shards
        self.shard_mode = shard_mode
        self.seed = seed
        self.lookahead = lookahead
        self.window = lookahead / 2 if lookahead > 0 else 0.0
        self.partitioner = Partitioner(
            shards, principal_overrides, channel_overrides
        )
        self._start_method = start_method
        self._runtime_kwargs = dict(
            latency=latency,
            mode=mode,
            enforce_integrity=enforce_integrity,
            replication_budget=replication_budget,
            processing_delay=processing_delay,
            wire_version=wire_version,
            vetting=vetting,
            scheduler=scheduler,
            detailed_metrics=detailed_metrics,
            metrics_retention=metrics_retention,
            batch_limit=batch_limit,
            crypto=crypto,
            verify_deliveries=verify_deliveries,
            fault_plan=fault_plan,
        )
        self._collect_trace = metrics_retention != 0
        self.durable_dir = None if durable_dir is None else str(durable_dir)
        self.checkpoint_every = checkpoint_every
        self.recovery_retries = recovery_retries
        """How many times a dead shard is respawned (with backoff)
        before the run degrades to a typed :class:`ShardLostError`."""
        self.retry_backoff = retry_backoff
        self._shards: list[DistributedRuntime] = []
        self._system: Optional[System] = None
        self._builder: Optional[Callable[..., Any]] = None
        self._builder_kwargs: dict[str, Any] = {}
        self._topology: Optional[Topology] = None
        self._deployed = False
        self._finished = False
        self._process_results: Optional[list[dict[str, Any]]] = None
        self._events_processed = 0
        self._barrier_rounds = 0

    # -- deployment --------------------------------------------------------

    def shard(self, index: int) -> DistributedRuntime:
        """The (inline) runtime stack of one shard."""

        return self._shards[index]

    def deploy(
        self, system: System, topology: Optional[Topology] = None
    ) -> None:
        """Partition ``system`` across the shards.

        In process mode the (picklable) system is shipped to every
        worker, which deploys its own slice; ``topology`` closures
        cannot cross process boundaries — use :meth:`deploy_builder`
        for per-link latency in process mode.
        """

        if self._deployed:
            raise SimulationError("already deployed")
        if topology is not None and self.shard_mode == "process":
            raise SimulationError(
                "topology callables cannot cross process boundaries; "
                "use deploy_builder(...) so workers rebuild it locally"
            )
        self._system = system
        self._topology = topology
        self._deployed = True
        self._write_root_manifest()
        if self.shard_mode == "inline":
            self._build_inline()

    def deploy_builder(self, builder: Callable[..., Any], **kwargs) -> None:
        """Deploy the workload ``builder(**kwargs)`` describes.

        ``builder`` must be an importable top-level callable returning
        either a workload object (``.system`` plus optional
        ``.topology``) or a bare ``System`` — the reference, not the
        result, is pickled, so process-mode workers re-run it locally
        and closures in its topology never cross a process boundary.
        """

        if self._deployed:
            raise SimulationError("already deployed")
        self._builder = builder
        self._builder_kwargs = dict(kwargs)
        self._deployed = True
        self._write_root_manifest()
        if self.shard_mode == "inline":
            workload = builder(**kwargs)
            self._system = getattr(workload, "system", workload)
            self._topology = getattr(workload, "topology", None)
            self._build_inline()

    def _shard_store_dir(self, index: int) -> str:
        return os.path.join(self.durable_dir, f"shard-{index}")

    def _write_root_manifest(self) -> None:
        if self.durable_dir is None:
            return
        from repro.storage.segments import DurableStore

        store = DurableStore(self.durable_dir)
        # a fresh deploy owns the directory: overwrite whatever an
        # earlier run left so `repro recover` reads *this* run's shape
        store.write_manifest(
            {
                "format": 1,
                "sharded": True,
                "shards": self.n_shards,
                "shard_mode": self.shard_mode,
                "seed": self.seed,
                "lookahead": self.lookahead,
                "checkpoint_every": self.checkpoint_every,
            }
        )

    def _build_inline(self) -> None:
        sequence = SequenceSource()
        supply = NameSupply()
        supply.reserve(all_system_names(self._system))
        for index in range(self.n_shards):
            durable_kwargs = {}
            if self.durable_dir is not None:
                durable_kwargs["durable"] = self._shard_store_dir(index)
                durable_kwargs["durable_wipe"] = True
            runtime = DistributedRuntime(
                seed=self.seed,
                topology=self._topology,
                sequence_source=sequence,
                latency_sampler=KeyedLatencySampler(self.seed),
                **self._runtime_kwargs,
                **durable_kwargs,
            )
            if runtime.durable is not None and (
                runtime.durable.read_manifest() is None
            ):
                runtime.durable.write_manifest(
                    {
                        "format": 1,
                        "shard": index,
                        "shards": self.n_shards,
                        "seed": self.seed,
                        "window": self.window,
                        "lookahead": self.lookahead,
                        "checkpoint_every": self.checkpoint_every,
                    }
                )
            # lockstep execution makes one shared supply safe and keeps
            # runtime-fresh names (restrictions) identical to shards=1
            runtime.middleware.supply = supply
            runtime.middleware.router = ShardRouter(
                index,
                self.partitioner,
                runtime,
                hub=self,
                lookahead=self.lookahead,
            )
            self._shards.append(runtime)
        nf = normalize(self._system)
        _deploy_partitioned(
            nf, self.partitioner, lambda shard: self._shards[shard]
        )

    # -- execution ---------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> int:
        """Advance the whole mesh; returns events processed (all shards)."""

        if not self._deployed:
            raise SimulationError("deploy a system before running")
        if self.shard_mode == "inline":
            processed = self._run_inline(until, max_events)
            # the inline conductor drives the simulators directly, so
            # the per-shard journals flush here, not in runtime.run()
            for shard in self._shards:
                if shard.durability is not None:
                    shard.durability.flush()
        else:
            processed = self._run_process(until, max_events)
        self._events_processed += processed
        return processed

    def _run_inline(self, until: Optional[float], max_events: int) -> int:
        if self.n_shards == 1:
            return self._shards[0].simulator.run(
                until=until, max_events=max_events
            )
        simulators = [shard.simulator for shard in self._shards]
        processed = 0
        while processed < max_events:
            best = None
            best_key = None
            for simulator in simulators:
                key = simulator.next_event_key()
                if key is not None and (best_key is None or key < best_key):
                    best_key, best = key, simulator
            if best is None:
                break
            instant = best_key[0]
            if until is not None and instant > until:
                break
            for simulator in simulators:
                simulator.sync_clock(instant)
            best.run(max_events=1)
            processed += 1
        if until is not None:
            upcoming = [
                key[0]
                for key in (s.next_event_key() for s in simulators)
                if key is not None
            ]
            horizon = until
            if upcoming and min(upcoming) < horizon:
                horizon = min(upcoming)
            for simulator in simulators:
                simulator.sync_clock(horizon)
        return processed

    def _make_specs(self) -> list[_ShardSpec]:
        # ship the raw (picklable) system; normalization is a pure
        # function of it, so every worker derives the identical normal
        # form — including renamed-apart restriction binders
        return [
            _ShardSpec(
                index=index,
                n_shards=self.n_shards,
                seed=self.seed,
                window=self.window,
                lookahead=self.lookahead,
                principal_overrides=self.partitioner.principal_overrides,
                channel_overrides=self.partitioner.channel_overrides,
                system=self._system if self._builder is None else None,
                builder=self._builder,
                builder_kwargs=self._builder_kwargs,
                collect_trace=self._collect_trace,
                durable_dir=(
                    self._shard_store_dir(index)
                    if self.durable_dir is not None
                    else None
                ),
                checkpoint_every=self.checkpoint_every,
                **self._runtime_kwargs,
            )
            for index in range(self.n_shards)
        ]

    def _run_process(self, until: Optional[float], max_events: int) -> int:
        if self._finished:
            raise SimulationError(
                "a process-mode mesh runs once; build a new ShardedRuntime"
            )
        self._finished = True
        import multiprocessing

        method = self._start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(method)
        connections = []
        workers = []
        specs = self._make_specs()
        try:
            for spec in specs:
                parent_conn, child_conn = context.Pipe()
                worker = context.Process(
                    target=_shard_worker, args=(child_conn, spec), daemon=True
                )
                worker.start()
                child_conn.close()
                connections.append(parent_conn)
                workers.append(worker)
            next_times = [
                self._expect(conn, "ready")[1] for conn in connections
            ]
            pending: dict[int, list[WireEnvelope]] = {
                index: [] for index in range(self.n_shards)
            }
            window = self.window
            processed = 0
            while processed < max_events:
                candidates = [t for t in next_times if t is not None]
                candidates.extend(
                    envelope.arrival_time
                    for batch in pending.values()
                    for envelope in batch
                )
                if not candidates:
                    break
                t_min = min(candidates)
                if until is not None and t_min > until:
                    break
                # skip idle windows: jump straight to the window
                # containing the earliest pending instant — safe
                # because every event in that window is >= t_min,
                # so every send it performs arrives > boundary + W
                boundary = window * (floor(t_min / window) + 1)
                if until is not None and boundary > until:
                    boundary = until
                budget = max_events - processed
                commands = []
                failed: list[int] = []
                for index, conn in enumerate(connections):
                    command = ("window", boundary, pending[index], budget)
                    commands.append(command)
                    try:
                        conn.send(command)
                    except OSError:
                        failed.append(index)
                pending = {index: [] for index in range(self.n_shards)}
                self._barrier_rounds += 1
                replies: dict[int, tuple] = {}
                for index, conn in enumerate(connections):
                    if index in failed:
                        continue
                    try:
                        replies[index] = self._expect(conn, "done")
                    except (EOFError, OSError):
                        # the worker died mid-window (e.g. an injected
                        # SIGKILL); its peers have already answered or
                        # will — they stall at this barrier round while
                        # the dead shard is recovered below
                        failed.append(index)
                for index in failed:
                    replies[index] = self._recover_shard(
                        index,
                        specs[index],
                        context,
                        connections,
                        workers,
                        commands[index],
                    )
                for index in range(self.n_shards):
                    _, events, next_time, outgoing = replies[index]
                    processed += events
                    next_times[index] = next_time
                    for envelope in outgoing:
                        pending[envelope.target].append(envelope)
            results = []
            for conn in connections:
                conn.send(("finish",))
            for conn in connections:
                results.append(self._expect(conn, "result")[1])
            self._process_results = results
            for worker in workers:
                worker.join(timeout=30)
            return processed
        finally:
            for conn in connections:
                try:
                    conn.close()
                except Exception:
                    pass
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
                    worker.join(timeout=5)

    def _recover_shard(
        self, index, spec, context, connections, workers, command
    ):
        """Respawn a dead shard from its durable journal; returns its
        ``done`` reply for the outstanding barrier round.

        The replacement worker replays its window WAL from ``t = 0``
        (deterministic re-execution — see :func:`_shard_worker`) and
        reports how many windows it replayed:

        * all issued windows → the last replayed reply *is* the one the
          dead worker never sent; use it directly.
        * one short → the window never reached the WAL (killed before
          journaling, or the tail was torn); re-issue the saved command.
        * anything else → the journal is inconsistent; degrade.

        Bounded retries with linear backoff; exhaustion (or a run with
        no ``durable_dir``) raises :class:`ShardLostError`.
        """

        if not spec.durable_dir:
            raise ShardLostError(
                f"shard {index} died at barrier round "
                f"{self._barrier_rounds} with no durable journal to "
                f"replay — pass durable_dir= to enable recovery"
            )
        issued = self._barrier_rounds
        last_error: Optional[BaseException] = None
        for attempt in range(self.recovery_retries + 1):
            if attempt:
                time_module.sleep(self.retry_backoff * attempt)
            try:
                try:
                    connections[index].close()
                except Exception:
                    pass
                worker = workers[index]
                if worker.is_alive():
                    worker.terminate()
                worker.join(timeout=5)
                parent_conn, child_conn = context.Pipe()
                replacement = context.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        dataclasses.replace(spec, recover=True),
                    ),
                    daemon=True,
                )
                replacement.start()
                child_conn.close()
                workers[index] = replacement
                connections[index] = parent_conn
                _, replayed, last_reply = self._expect(
                    parent_conn, "recovered"
                )
                if replayed == issued and last_reply is not None:
                    return last_reply
                if replayed == issued - 1:
                    parent_conn.send(command)
                    return self._expect(parent_conn, "done")
                raise ShardLostError(
                    f"shard {index}: window WAL replayed {replayed} "
                    f"windows but {issued} were issued — journal "
                    f"inconsistent"
                )
            except ShardLostError:
                raise
            except (EOFError, OSError, SimulationError) as error:
                last_error = error
        raise ShardLostError(
            f"shard {index} could not be recovered after "
            f"{self.recovery_retries + 1} attempts: {last_error}"
        )

    @staticmethod
    def _expect(conn, kind: str):
        reply = conn.recv()
        if reply[0] == "error":
            raise SimulationError(f"shard worker failed:\n{reply[1]}")
        if reply[0] != kind:
            raise SimulationError(
                f"barrier protocol violation: expected {kind!r}, "
                f"got {reply[0]!r}"
            )
        return reply

    # -- results -----------------------------------------------------------

    @property
    def now(self) -> float:
        if self.shard_mode == "process":
            if self._process_results is None:
                return 0.0
            return max(result["now"] for result in self._process_results)
        if not self._shards:
            return 0.0
        return max(shard.simulator.now for shard in self._shards)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def barrier_rounds(self) -> int:
        """Conservative windows executed (process mode; 0 inline)."""

        return self._barrier_rounds

    def _shard_delivered(self) -> list[list[DeliveryRecord]]:
        if self.shard_mode == "process":
            if self._process_results is None:
                raise SimulationError("run() the mesh before reading results")
            return [
                result["delivered"] for result in self._process_results
            ]
        return [list(shard.metrics.delivered) for shard in self._shards]

    def delivered_trace(
        self,
    ) -> list[tuple[float, Principal, Channel, tuple, int]]:
        """The merged global trace, canonically ordered.

        Sort key: ``(time, channel name, per-channel ordinal)``.  Each
        channel is homed on exactly one shard, so its deliveries carry a
        total order (the ordinal); merging by time with the channel
        name and ordinal as tie-breaks yields one canonical sequence
        that is independent of how principals were partitioned — the
        artifact the E21 differential compares bit for bit.
        """

        keyed = []
        for records in self._shard_delivered():
            ordinals: dict[Channel, int] = {}
            for record in records:
                ordinal = ordinals.get(record.channel, 0)
                ordinals[record.channel] = ordinal + 1
                keyed.append(
                    (record.time, record.channel.name, ordinal, record)
                )
        keyed.sort(key=lambda entry: entry[:3])
        return [
            (
                record.time,
                record.principal,
                record.channel,
                record.values,
                record.branch_index,
            )
            for *_, record in keyed
        ]

    def shard_summaries(self) -> list[dict[str, Any]]:
        if self.shard_mode == "process":
            if self._process_results is None:
                raise SimulationError("run() the mesh before reading results")
            return [result["summary"] for result in self._process_results]
        return [shard.metrics.summary() for shard in self._shards]

    def metrics_summary(self) -> dict[str, Any]:
        """All shards' summaries composed via :meth:`RuntimeMetrics.merge`."""

        return RuntimeMetrics.merge(*self.shard_summaries())

    def build_query_index(self, index=None):
        """A provenance query index over the merged global trace.

        Per-shard delivery streams are merged in canonical trace order
        (:meth:`delivered_trace` — time, channel name, per-channel
        ordinal) before indexing, so the index is identical for any
        partitioning and matches an unsharded run's — the cross-shard
        spines re-intern to the same DAG nodes the v2 wire decoded.
        One call absorbs the whole trace as one log generation; pass an
        existing index to extend it with a later run's trace.
        """

        from repro.query import ProvenanceIndex

        if index is None:
            index = ProvenanceIndex()
        index.extend_trace(self.delivered_trace())
        return index

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard load figures — imbalance without a profiler."""

        if self.shard_mode == "process":
            if self._process_results is None:
                raise SimulationError("run() the mesh before reading results")
            return [
                {
                    "shard": index,
                    "events": result["events_processed"],
                    "deliveries": result["deliveries"],
                    "messages_sent": result["messages_sent"],
                    "cross_shard_sent": result["cross_shard_sent"],
                    "cross_shard_received": result["cross_shard_received"],
                    "barrier_stall_seconds": result["barrier_stall_seconds"],
                    "blocked_threads": result["blocked_threads"],
                }
                for index, result in enumerate(self._process_results)
            ]
        return [
            {
                "shard": index,
                "events": shard.simulator.events_processed,
                "deliveries": shard.metrics.deliveries,
                "messages_sent": shard.metrics.messages_sent,
                "cross_shard_sent": shard.middleware.router.cross_shard_sent,
                "cross_shard_received": (
                    shard.middleware.router.cross_shard_received
                ),
                "barrier_stall_seconds": 0.0,
                "blocked_threads": shard.blocked_threads(),
            }
            for index, shard in enumerate(self._shards)
        ]

    def blocked_threads(self) -> int:
        if self.shard_mode == "process":
            if self._process_results is None:
                return 0
            return sum(
                result["blocked_threads"] for result in self._process_results
            )
        return sum(shard.blocked_threads() for shard in self._shards)

    def messages_in_flight(self) -> int:
        if self.shard_mode == "process":
            if self._process_results is None:
                return 0
            return sum(
                result["messages_in_flight"]
                for result in self._process_results
            )
        return sum(
            shard.network.messages_in_flight for shard in self._shards
        )
