"""Simulated distributed runtime: the trusted-middleware deployment."""

from repro.runtime.adversary import (
    ATTACK_MIXES,
    AttackOutcome,
    CollusionAdversary,
    ForgingAdversary,
    GarblingAdversary,
    SplicingAdversary,
    TruncatingAdversary,
    run_threat_suite,
)
from repro.core.errors import ShardLostError
from repro.runtime.metrics import DeliveryRecord, RuntimeMetrics
from repro.runtime.middleware import (
    ChannelManager,
    Middleware,
    PendingReceive,
    ReceiveBranch,
)
from repro.runtime.network import (
    ZERO_LATENCY,
    FaultInjector,
    FaultPlan,
    KeyedLatencySampler,
    LatencyModel,
    Network,
)
from repro.runtime.node import Node
from repro.runtime.runtime import DistributedRuntime
from repro.runtime.shards import (
    Partitioner,
    ShardedRuntime,
    ShardPlan,
    ShardRouter,
    WireEnvelope,
)
from repro.runtime.simulator import SequenceSource, Simulator
from repro.runtime.wire import (
    Codec,
    decode_payload,
    decode_plain,
    decode_provenance,
    decode_value,
    encode_payload,
    encode_plain,
    encode_provenance,
    encode_value,
)

__all__ = [name for name in dir() if not name.startswith("_")]
