"""The deployment facade: a whole system on the simulated cluster.

:class:`DistributedRuntime` assembles simulator, network, middleware and
one node per principal, deploys a calculus system onto them, and runs the
clock.  It is the entry point examples and benchmarks use::

    runtime = DistributedRuntime(seed=7)
    runtime.deploy(parse_system("a[m<v>] || b[m(x).0]"))
    runtime.run()
    print(runtime.metrics.summary())
"""

from __future__ import annotations

from typing import Optional

from repro.core.congruence import all_system_names, normalize
from repro.core.names import Principal
from repro.core.semantics import SemanticsMode
from repro.core.system import Located, Message, System
from repro.runtime.metrics import RuntimeMetrics
from repro.core.integrity import KeyRing
from repro.runtime.middleware import Middleware
from repro.runtime.network import (
    FaultInjector,
    FaultPlan,
    KeyedLatencySampler,
    LatencyModel,
    Network,
    Topology,
)
from repro.runtime.node import DEFAULT_BATCH_LIMIT, Node
from repro.runtime.simulator import SequenceSource, Simulator
from repro.runtime.wire import WIRE_V2

__all__ = ["DistributedRuntime"]


class DistributedRuntime:
    """Simulator + network + middleware + nodes, wired together.

    ``scheduler`` selects the substrate: ``"runq"`` (default) uses the
    two-tier run-queue/heap scheduler with batched process
    interpretation on the nodes; ``"heap"`` keeps the seed's
    single-heap, one-event-per-tree-node substrate as the A/B reference.
    Each is fully deterministic for a given seed, and for race-free
    programs (no concurrently enabled receives competing for one
    message in the same zero-latency instant) both execute the same run
    — identical deliveries, times, and stamped values
    (``benchmarks/bench_runtime_scaling.py`` gates that differential
    and the throughput ratio; see :mod:`repro.runtime.node` for the
    caveat on racy rendezvous).
    """

    def __init__(
        self,
        seed: int = 0,
        latency: LatencyModel = LatencyModel(),
        mode: SemanticsMode = SemanticsMode.TRACKED,
        enforce_integrity: bool = True,
        replication_budget: int = 4,
        processing_delay: float = 0.0,
        wire_version: int = WIRE_V2,
        vetting: str = "bank",
        certificate: Optional[object] = None,
        detailed_metrics: bool = True,
        scheduler: str = "runq",
        topology: Optional[Topology] = None,
        metrics_retention: Optional[int] = None,
        batch_limit: Optional[int] = None,
        sequence_source: Optional[SequenceSource] = None,
        latency_sampler: Optional[KeyedLatencySampler] = None,
        crypto: bool = True,
        verify_deliveries: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        keyring: Optional[KeyRing] = None,
        durable=None,
        checkpoint_every: Optional[int] = None,
        attestation_cache: Optional[int] = None,
        durable_wipe: bool = False,
    ) -> None:
        self.simulator = Simulator(
            seed, scheduler=scheduler, sequence_source=sequence_source
        )
        faults = None
        if fault_plan is not None and not fault_plan.is_quiet:
            faults = FaultInjector(fault_plan, seed)
        self.network = Network(
            self.simulator,
            latency,
            topology=topology,
            sampler=latency_sampler,
            faults=faults,
        )
        self.metrics = RuntimeMetrics(
            detailed=detailed_metrics, retain=metrics_retention
        )
        # durable mode: the attestation store spills to disk (bounded
        # RAM) and the middleware streams deliveries into a write-ahead
        # journal.  Imported lazily — repro.storage pulls in recovery
        # machinery most runs never need.
        self.durable = None
        self.durability = None
        self.checkpoint_every = checkpoint_every
        attestations = None
        if durable is not None:
            from repro.storage.segments import AttestationSpill, DurableStore
            from repro.core.integrity import AttestationStore

            store = (
                durable
                if isinstance(durable, DurableStore)
                else DurableStore(durable)
            )
            if durable_wipe:
                store.wipe()
            self.durable = store
            cache = (
                attestation_cache if attestation_cache is not None else 65536
            )
            attestations = AttestationStore(
                spill=AttestationSpill(store.spill_path()), capacity=cache
            )
        self.middleware = Middleware(
            self.simulator,
            self.network,
            self.metrics,
            mode=mode,
            enforce_integrity=enforce_integrity,
            wire_version=wire_version,
            vetting=vetting,
            certificate=certificate,
            keyring=keyring,
            crypto=crypto,
            verify_deliveries=verify_deliveries,
            attestations=attestations,
        )
        if self.durable is not None:
            from repro.storage.journal import DurabilitySink

            self.durability = DurabilitySink(
                self.durable,
                attestation_lookup=self.middleware.attestations.tag,
            )
            self.middleware.journal = self.durability
        self.query_index = None
        """A :class:`~repro.query.ProvenanceIndex` streaming this
        runtime's deliveries, once :meth:`attach_query_index` ran."""
        self.replication_budget = replication_budget
        self.processing_delay = processing_delay
        if batch_limit is None and scheduler == "runq":
            batch_limit = DEFAULT_BATCH_LIMIT
        self.batch_limit = batch_limit
        self._nodes: dict[Principal, Node] = {}
        self._fault_plan = fault_plan
        self._config = dict(
            seed=seed,
            mode=mode.name,
            enforce_integrity=enforce_integrity,
            replication_budget=replication_budget,
            processing_delay=processing_delay,
            wire_version=wire_version,
            vetting=vetting,
            scheduler=scheduler,
            crypto=crypto,
            verify_deliveries=verify_deliveries,
            latency_base=latency.base,
            latency_jitter=latency.jitter,
        )

    def node(self, principal: Principal) -> Node:
        """The (lazily created) node hosting ``principal``."""

        existing = self._nodes.get(principal)
        if existing is None:
            existing = Node(
                principal,
                self.middleware,
                replication_budget=self.replication_budget,
                processing_delay=self.processing_delay,
                batch_limit=self.batch_limit,
            )
            self._nodes[principal] = existing
        return existing

    @property
    def nodes(self) -> dict[Principal, Node]:
        return dict(self._nodes)

    def deploy(self, system: System) -> None:
        """Place every located process on its node; post in-flight messages.

        The system is normalized first: top-level restrictions become
        ordinary (renamed-apart) channel names — on a real deployment they
        would be channels whose name is known only to their creators.
        """

        if self.durable is not None and not self.durable.manifest_path().exists():
            self.durable.write_manifest(self._manifest_for(system))
        self.middleware.supply.reserve(all_system_names(system))
        nf = normalize(system)
        # consecutive components of one principal ride one batched
        # event (spawn_group); interleaving stays exactly the normal
        # form's component order, so heap and run-queue deployments
        # execute the same run
        group_principal: Optional[Principal] = None
        group: list = []
        for component in nf.components:
            if isinstance(component, Located):
                if component.principal != group_principal:
                    if group:
                        self.node(group_principal).spawn_group(group)
                    group_principal = component.principal
                    group = []
                group.append(component.process)
            elif isinstance(component, Message):
                if group:
                    self.node(group_principal).spawn_group(group)
                    group_principal, group = None, []
                # deploy-time message literals carry histories the
                # middleware itself vouches for: attest them so chain
                # verification accepts what enforcement already did
                self.middleware.adopt(component.payload)
                self.middleware.manager(component.channel).post(
                    component.payload, self.simulator.now
                )
        if group:
            self.node(group_principal).spawn_group(group)

    def _manifest_for(self, system: System) -> dict:
        """Everything a later process needs to re-execute this run.

        The engine is deterministic, so config + system source *is* the
        run; recovery re-parses the pretty-printed source and replays
        (see :mod:`repro.storage.recover`).
        """

        from dataclasses import asdict

        from repro.core.system import system_principals
        from repro.lang import pretty_system

        return {
            "format": 1,
            "runtime": dict(self._config),
            "keyring_master": self.middleware.keyring.master.hex(),
            "checkpoint_every": self.checkpoint_every,
            "system": pretty_system(system),
            "principals": sorted(p.name for p in system_principals(system)),
            "faults": (
                asdict(self._fault_plan)
                if self._fault_plan is not None
                else None
            ),
        }

    def attach_query_index(self, index=None):
        """Stream every delivery into a provenance query index.

        Registers a delivery observer on the middleware; the index sees
        exactly what the journal sees, in delivery order, and absorbs
        batches at generation boundaries (each :meth:`checkpoint`, or
        on demand at query time).  Observers are pure consumers — the
        delivered trace is bit-identical with or without one attached
        (the E24 differential).  Pass an existing index to resume it;
        returns the attached index.
        """

        if self.query_index is not None:
            raise ValueError("a query index is already attached")
        if index is None:
            from repro.query import ProvenanceIndex

            index = ProvenanceIndex()
        self.query_index = index
        self.middleware.delivery_observers.append(index.observe_delivery)
        return index

    def checkpoint(self):
        """Snapshot the durable record; returns the checkpoint path.

        The checkpoint header captures simulated time, events
        processed, the metrics summary, and the quarantine set; the
        body compacts every journaled delivery into one self-contained,
        atomically renamed segment (see :mod:`repro.storage.checkpoint`).
        With a query index attached, the index commits the generation
        and persists a snapshot beside the checkpoint so a later
        ``repro recover`` / ``repro query`` resumes it without a full
        rebuild (see :mod:`repro.query.persist`).
        """

        if self.durability is None:
            from repro.core.errors import StorageError

            raise StorageError(
                "checkpoint() requires a durable runtime (pass durable=DIR)"
            )
        middleware = self.middleware
        state = {
            "time": self.simulator.now,
            "events": self.simulator.events_processed,
            "summary": self.metrics.summary(),
            "quarantined": sorted(
                p.name for p in middleware.quarantined
            ),
            "revoked": bool(
                middleware.certificate is None
                and self.metrics.certificates_revoked
            ),
        }
        path = self.durability.checkpoint(state)
        if self.query_index is not None:
            from repro.query.persist import save_index

            # the sink already rolled to generation+1; the checkpoint
            # just written carries the previous generation number
            save_index(
                self.durable, self.query_index, self.durability.generation - 1
            )
        return path

    def run(
        self, until: Optional[float] = None, max_events: int = 1_000_000
    ) -> int:
        """Advance the simulation; returns events processed.

        On a durable runtime the journal is flushed when the run
        settles, and with ``checkpoint_every=N`` a checkpoint is cut
        after every ``N`` processed events.
        """

        if self.durability is None:
            return self.simulator.run(until=until, max_events=max_events)
        every = self.checkpoint_every
        if not every:
            processed = self.simulator.run(until=until, max_events=max_events)
            self.durability.flush()
            return processed
        processed = 0
        while processed < max_events:
            chunk = min(every, max_events - processed)
            ran = self.simulator.run(until=until, max_events=chunk)
            processed += ran
            if ran < chunk:
                break
            self.checkpoint()
        self.durability.flush()
        return processed

    @property
    def now(self) -> float:
        return self.simulator.now

    def blocked_threads(self) -> int:
        """Receivers currently waiting across all nodes."""

        return sum(node.blocked_threads for node in self._nodes.values())

    def threads_spawned(self) -> int:
        """Logical threads interpreted so far across all nodes.

        One per process-tree node, whichever interpreter ran it — the
        batched worklist and the seed's one-event-per-node path count
        identically.
        """

        return sum(node.threads_spawned for node in self._nodes.values())
