"""The deployment facade: a whole system on the simulated cluster.

:class:`DistributedRuntime` assembles simulator, network, middleware and
one node per principal, deploys a calculus system onto them, and runs the
clock.  It is the entry point examples and benchmarks use::

    runtime = DistributedRuntime(seed=7)
    runtime.deploy(parse_system("a[m<v>] || b[m(x).0]"))
    runtime.run()
    print(runtime.metrics.summary())
"""

from __future__ import annotations

from typing import Optional

from repro.core.congruence import all_system_names, normalize
from repro.core.names import Principal
from repro.core.semantics import SemanticsMode
from repro.core.system import Located, Message, System
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.middleware import Middleware
from repro.runtime.network import LatencyModel, Network
from repro.runtime.node import Node
from repro.runtime.simulator import Simulator
from repro.runtime.wire import WIRE_V2

__all__ = ["DistributedRuntime"]


class DistributedRuntime:
    """Simulator + network + middleware + nodes, wired together."""

    def __init__(
        self,
        seed: int = 0,
        latency: LatencyModel = LatencyModel(),
        mode: SemanticsMode = SemanticsMode.TRACKED,
        enforce_integrity: bool = True,
        replication_budget: int = 4,
        processing_delay: float = 0.0,
        wire_version: int = WIRE_V2,
        vetting: str = "bank",
        detailed_metrics: bool = True,
    ) -> None:
        self.simulator = Simulator(seed)
        self.network = Network(self.simulator, latency)
        self.metrics = RuntimeMetrics(detailed=detailed_metrics)
        self.middleware = Middleware(
            self.simulator,
            self.network,
            self.metrics,
            mode=mode,
            enforce_integrity=enforce_integrity,
            wire_version=wire_version,
            vetting=vetting,
        )
        self.replication_budget = replication_budget
        self.processing_delay = processing_delay
        self._nodes: dict[Principal, Node] = {}

    def node(self, principal: Principal) -> Node:
        """The (lazily created) node hosting ``principal``."""

        existing = self._nodes.get(principal)
        if existing is None:
            existing = Node(
                principal,
                self.middleware,
                replication_budget=self.replication_budget,
                processing_delay=self.processing_delay,
            )
            self._nodes[principal] = existing
        return existing

    @property
    def nodes(self) -> dict[Principal, Node]:
        return dict(self._nodes)

    def deploy(self, system: System) -> None:
        """Place every located process on its node; post in-flight messages.

        The system is normalized first: top-level restrictions become
        ordinary (renamed-apart) channel names — on a real deployment they
        would be channels whose name is known only to their creators.
        """

        self.middleware.supply.reserve(all_system_names(system))
        nf = normalize(system)
        for component in nf.components:
            if isinstance(component, Located):
                self.node(component.principal).spawn(component.process)
            elif isinstance(component, Message):
                self.middleware.manager(component.channel).post(
                    component.payload, self.simulator.now
                )

    def run(
        self, until: Optional[float] = None, max_events: int = 1_000_000
    ) -> int:
        """Advance the simulation; returns events processed."""

        return self.simulator.run(until=until, max_events=max_events)

    @property
    def now(self) -> float:
        return self.simulator.now

    def blocked_threads(self) -> int:
        """Receivers currently waiting across all nodes."""

        return sum(node.blocked_threads for node in self._nodes.values())
