"""Discrete-event simulation core.

The runtime package implements the deployment the paper's footnote 1
envisages — provenance tracking performed by a trusted middleware beneath
application code — on a *simulated* distributed substrate (the paper has
no implementation and we have no cluster; the simulation exercises the
same code paths: serialize, route, vet, deliver).

This module is the clock.  Determinism is a design requirement — all
randomness (latency jitter) flows from one seeded generator, and
simultaneous events tie-break on a monotone sequence number, so every
run is exactly reproducible.

Scheduling is two-tier (``scheduler="runq"``, the default):

* a FIFO **run queue** holds zero-delay events — the overwhelming
  majority under heavy traffic: every process-tree continuation a node
  spawns and every zero-latency hop.  Append and pop are O(1).
* a binary **heap** holds genuinely timed events (network latency,
  per-node processing delays) and pays the classic O(log n).

The two tiers drain as one totally ordered stream.  Every event carries
the key ``(time, sequence)``; the run queue only ever receives events
stamped at the *current* clock reading, and both the clock and the
sequence counter are monotone, so the run queue is itself sorted by that
key and a single front-vs-top comparison per pop suffices to merge the
tiers in exact heap order.  ``scheduler="heap"`` keeps the seed's
single-heap scheduler as the A/B reference
(``benchmarks/bench_runtime_scaling.py`` gates the throughput ratio and
a delivered-trace differential).

Determinism contract: each mode is fully deterministic — the same seed
and the same ``schedule()`` call sequence replay the same callbacks in
the same order, and given identical call sequences the two modes are
order-identical (the merge above is exact, not approximate).  Note that
the *runtime* couples the scheduler choice to the node interpreter
(batched under ``runq``, per-node under ``heap``), which can issue
``schedule()`` calls in a different grouping — see
:mod:`repro.runtime.node` for when that distinction is observable.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Optional

from repro.core.errors import SimulationError

__all__ = ["SequenceSource", "Simulator"]

_HEAP = 0
_RUNQ = 1


class SequenceSource:
    """A monotone event-sequence counter shareable across simulators.

    The sharded runtime's *inline* mode runs several :class:`Simulator`
    instances in lockstep under one conductor; handing them one shared
    source makes every event's ``(time, sequence)`` key globally unique
    and totally ordered exactly as a single simulator would have stamped
    it — the invariant the bit-for-bit trace differential rests on.
    """

    __slots__ = ("count",)

    def __init__(self, start: int = 0) -> None:
        self.count = start

    def next(self) -> int:
        self.count += 1
        return self.count


@dataclass(order=True)
class _Scheduled:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    tier: int = field(compare=False, default=_HEAP)


class Simulator:
    """A deterministic discrete-event loop.

    ``schedule(delay, callback)`` enqueues work ``delay`` time units in
    the future; :meth:`run` drains the queue in time order.  Callbacks may
    schedule further events.
    """

    def __init__(
        self,
        seed: int = 0,
        scheduler: str = "runq",
        sequence_source: Optional[SequenceSource] = None,
    ) -> None:
        if scheduler not in ("runq", "heap"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.scheduler = scheduler
        self._use_runq = scheduler == "runq"
        self.now: float = 0.0
        self.rng = Random(seed)
        self._queue: list[_Scheduled] = []
        self._runq: deque[_Scheduled] = deque()
        self._sequence = 0
        self._seq_source = sequence_source
        self._live = 0
        self._queue_cancelled = 0
        self._runq_cancelled = 0
        self.events_processed = 0

    def _next_sequence(self) -> int:
        source = self._seq_source
        if source is None:
            self._sequence += 1
            return self._sequence
        return source.next()

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> _Scheduled:
        """Enqueue ``callback`` to run at ``now + delay``."""

        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        sequence = self._next_sequence()
        self._live += 1
        if delay == 0.0 and self._use_runq:
            event = _Scheduled(self.now, sequence, callback, tier=_RUNQ)
            self._runq.append(event)
        else:
            event = _Scheduled(self.now + delay, sequence, callback)
            heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> _Scheduled:
        """Enqueue ``callback`` at an *absolute* simulated time.

        The cross-shard router stamps arrivals with the sender-side
        send time plus link latency; scheduling them by absolute time
        keeps the arrival instant independent of the receiving shard's
        clock reading at injection.  ``time`` must not lie in the past.
        """

        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.now}"
            )
        sequence = self._next_sequence()
        self._live += 1
        if time == self.now and self._use_runq:
            event = _Scheduled(time, sequence, callback, tier=_RUNQ)
            self._runq.append(event)
        else:
            event = _Scheduled(time, sequence, callback)
            heapq.heappush(self._queue, event)
        return event

    def next_event_key(self) -> Optional[tuple[float, int]]:
        """``(time, sequence)`` of the next live event, or ``None``.

        The inline shard conductor peeks every shard and runs the
        globally least key; the process-mode barrier uses the time half
        to pick the next conservative window.
        """

        event = self._next_event()
        if event is None:
            return None
        return (event.time, event.sequence)

    def sync_clock(self, now: float) -> None:
        """Advance (never rewind) the clock to ``now``.

        Safe whenever every pending event's time is ``>= now`` — the
        conductor calls this with the global minimum event time before
        each step, so callbacks that schedule onto *other* simulators
        (cross-shard continuations) stamp work at the current instant
        rather than at a stale shard-local reading.
        """

        if now > self.now:
            self.now = now

    def cancel(self, event: _Scheduled) -> None:
        """Mark a scheduled event as dead (it will be skipped).

        The entry stays in its queue until the drain loop (or a
        compaction) reaches it, but it no longer counts as pending, and
        whenever corpses outnumber live entries in a tier the tier is
        compacted — a cancel-heavy workload cannot grow either queue
        beyond twice its live population.  Cancelling twice, or
        cancelling an event that already ran, is a no-op.
        """

        if event.cancelled:
            return
        event.cancelled = True
        self._live -= 1
        if event.tier == _RUNQ:
            self._runq_cancelled += 1
            if self._runq_cancelled * 2 > len(self._runq):
                self._runq = deque(e for e in self._runq if not e.cancelled)
                self._runq_cancelled = 0
        else:
            self._queue_cancelled += 1
            if self._queue_cancelled * 2 > len(self._queue):
                self._queue = [e for e in self._queue if not e.cancelled]
                heapq.heapify(self._queue)
                self._queue_cancelled = 0

    @property
    def pending(self) -> int:
        """Number of not-yet-run live (non-cancelled) events."""

        return self._live

    def _next_event(self) -> Optional[_Scheduled]:
        """The live event with the least ``(time, sequence)``, not popped.

        Cancelled fronts are shed on the way, so the caller may pop the
        returned event from its tier's front in O(1)/O(log n).
        """

        runq, queue = self._runq, self._queue
        while runq and runq[0].cancelled:
            runq.popleft()
            self._runq_cancelled -= 1
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._queue_cancelled -= 1
        if not runq:
            return queue[0] if queue else None
        if not queue:
            return runq[0]
        front, top = runq[0], queue[0]
        if (front.time, front.sequence) <= (top.time, top.sequence):
            return front
        return top

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> int:
        """Process events in time order; returns how many ran.

        Stops when the queue is empty, simulated time passes ``until``, or
        ``max_events`` callbacks have run (a divergence guard for
        replicated senders).  On a windowed run (``until`` given) the
        clock always advances to ``min(until, next event time)`` before
        returning, so back-to-back windows compose exactly like one full
        run — work scheduled between windows is stamped at the window
        boundary, not at whatever instant the previous window's last
        event happened to occupy.
        """

        processed = 0
        heappop = heapq.heappop
        # the front containers are re-read every iteration: a cancel()
        # inside a callback may compact (replace) either one
        while processed < max_events:
            runq, queue = self._runq, self._queue
            while runq and runq[0].cancelled:
                runq.popleft()
                self._runq_cancelled -= 1
            while queue and queue[0].cancelled:
                heappop(queue)
                self._queue_cancelled -= 1
            if runq:
                event = runq[0]
                if queue:
                    top = queue[0]
                    if (top.time, top.sequence) < (event.time, event.sequence):
                        event = top
            elif queue:
                event = queue[0]
            else:
                break
            if until is not None and event.time > until:
                break
            if event.tier == _RUNQ:
                runq.popleft()
            else:
                heappop(queue)
            self._live -= 1
            # a popped event is no longer pending: flagging it makes a
            # late cancel() a no-op instead of a live-count corruption
            event.cancelled = True
            if event.time > self.now:
                self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None:
            horizon = until
            upcoming = self._next_event()
            if upcoming is not None and upcoming.time < horizon:
                horizon = upcoming.time
            if horizon > self.now:
                self.now = horizon
        return processed
