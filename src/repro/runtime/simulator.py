"""Discrete-event simulation core.

The runtime package implements the deployment the paper's footnote 1
envisages — provenance tracking performed by a trusted middleware beneath
application code — on a *simulated* distributed substrate (the paper has
no implementation and we have no cluster; the simulation exercises the
same code paths: serialize, route, vet, deliver).

This module is the clock: a classic event-queue simulator.  Determinism
is a design requirement — all randomness (latency jitter) flows from one
seeded generator, and simultaneous events tie-break on a monotone
sequence number, so every run is exactly reproducible.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import SimulationError

__all__ = ["Simulator"]


@dataclass(order=True)
class _Scheduled:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class Simulator:
    """A deterministic discrete-event loop.

    ``schedule(delay, callback)`` enqueues work ``delay`` time units in
    the future; :meth:`run` drains the queue in time order.  Callbacks may
    schedule further events.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: list[_Scheduled] = []
        self._sequence = 0
        self.events_processed = 0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> _Scheduled:
        """Enqueue ``callback`` to run at ``now + delay``."""

        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._sequence += 1
        event = _Scheduled(self.now + delay, self._sequence, callback)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: _Scheduled) -> None:
        """Mark a scheduled event as dead (it will be skipped)."""

        event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of not-yet-run (possibly cancelled) events."""

        return len(self._queue)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> int:
        """Process events in time order; returns how many ran.

        Stops when the queue is empty, simulated time passes ``until``, or
        ``max_events`` callbacks have run (a divergence guard for
        replicated senders).
        """

        processed = 0
        while self._queue and processed < max_events:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._queue, event)
                break
            self.now = max(self.now, event.time)
            event.callback()
            processed += 1
            self.events_processed += 1
        return processed
