"""Simulated network: latency models, link topology, and delivery.

A deliberately small abstraction: a message takes ``base + U(0, jitter)``
time units to reach its channel manager, sampled from the simulator's
seeded generator — latency never depends on size, and byte accounting
lives entirely in :class:`repro.runtime.metrics.RuntimeMetrics`
(deferred sizer thunks).

Delivery is reliable *by default* — the calculus' semantics assumes
reliable (if arbitrarily delayed) delivery — but a :class:`FaultPlan`
can be installed to exercise the integrity layer under a hostile
substrate: per-link, seeded, deterministic **drop / duplicate / reorder
/ corrupt** decisions.  Decisions are keyed draws (same digest scheme as
:class:`KeyedLatencySampler`, one ordinal stream per link per fault
kind), so a faulty run replays bit-identically under a fixed seed and
does not perturb the latency draws of the non-faulty messages around
it.  The injector only *decides*; applying the decision — and counting
it in :class:`~repro.runtime.metrics.RuntimeMetrics` — is the caller's
job (``Middleware.send`` for local links, ``ShardRouter.send_remote``
for wire links, where *drop* is decided before the codec encodes so the
stream stays consistent).

Which *model* a message samples from may vary per link: a ``topology``
callable maps ``(sender principal, channel)`` to the
:class:`LatencyModel` for that hop, so a multi-region deployment can
make intra-region hops free (they ride the simulator's O(1) run queue)
while cross-region hops pay distance (they go to the timed heap).  A
zero link (``LatencyModel(0.0, 0.0)``) samples no jitter and draws
nothing from the generator, so adding or removing zero links never
perturbs the random sequence timed links see.

Jitter normally comes from the simulator's seeded generator — one
stream per simulator.  The sharded runtime cannot use that stream: the
same message would consume a different draw depending on which shard's
generator it happened to land on, so an N-shard run would diverge from
the single-shard run it must stay bit-identical to.
:class:`KeyedLatencySampler` replaces the stream with a *keyed* draw —
a stable digest of ``(seed, sender, channel, per-link ordinal)`` — so a
message's latency depends only on its identity, never on the partition.
(The digest is ``blake2b``, not the builtin ``hash``, which is
randomized per process and would break cross-process determinism.)
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable, Optional

from repro.core.names import Channel, Principal
from repro.runtime.simulator import Simulator

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "KeyedLatencySampler",
    "LatencyModel",
    "Network",
    "NO_FAULT",
    "ZERO_LATENCY",
]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Uniform latency ``base + U(0, jitter)``."""

    base: float = 1.0
    jitter: float = 0.5

    def sample(self, rng) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.random() * self.jitter


ZERO_LATENCY = LatencyModel(0.0, 0.0)
"""A free link: zero-delay delivery, scheduled on the run queue."""

Topology = Callable[[Optional[Principal], Optional[Channel]], LatencyModel]


class KeyedLatencySampler:
    """Partition-independent jitter: ``U(0, 1)`` from a stable digest.

    The ``i``-th message a given sender puts on a given channel always
    draws the same uniform value, whether the run uses one simulator or
    sixteen — the draw is ``blake2b(seed | sender | channel | i)``
    mapped to ``[0, 1)``.  Per-link ordinals live with the sender's
    shard, and per-principal program order is preserved by every
    scheduler mode, so the ordinal a message gets is itself
    partition-independent.  Zero-jitter links never touch the counter,
    mirroring the generator-stream rule that free links draw nothing.
    """

    __slots__ = ("seed", "_ordinals")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._ordinals: dict[tuple[str, str], int] = {}

    def sample(
        self,
        model: LatencyModel,
        sender: Optional[Principal],
        channel: Optional[Channel],
    ) -> float:
        if model.jitter <= 0:
            return model.base
        key = (
            sender.name if sender is not None else "",
            channel.name if channel is not None else "",
        )
        ordinal = self._ordinals.get(key, 0)
        self._ordinals[key] = ordinal + 1
        digest = blake2b(
            f"{self.seed}|{key[0]}|{key[1]}|{ordinal}".encode("utf-8"),
            digest_size=8,
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**64
        return model.base + unit * model.jitter


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Per-message fault probabilities for every link of a run.

    Probabilities are independent per fault kind; ``reorder`` manifests
    as an extra ``reorder_delay`` time units added to the affected
    message's latency (enough to overtake later traffic on the link),
    since the simulator itself never reorders equal-time events.

    ``kill`` and ``torn`` are *process* faults, drawn per shard per
    barrier window rather than per message: ``kill`` SIGKILLs the shard
    worker mid-window, ``torn`` additionally truncates its window WAL
    mid-record first (the on-disk state a crash mid-append leaves).
    They require a durable sharded run to recover from — see
    :class:`~repro.runtime.shards.ShardedRuntime` — and they do not
    make a plan "loud" for :attr:`is_quiet`, which concerns per-message
    link faults only.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    reorder_delay: float = 5.0
    kill: float = 0.0
    torn: float = 0.0

    _ALIASES = {
        "drop": "drop",
        "dup": "duplicate",
        "duplicate": "duplicate",
        "reorder": "reorder",
        "corrupt": "corrupt",
        "delay": "reorder_delay",
        "reorder_delay": "reorder_delay",
        "kill": "kill",
        "torn": "torn",
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"drop=0.01,dup=0.02,corrupt=0.005"`` CLI specs.

        Rejects unknown keys, repeated keys, malformed or out-of-range
        values — each error names the offending token, so a typo like
        ``dorp=0.1`` fails loudly instead of silently injecting
        nothing.
        """

        kwargs: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(
                    f"bad fault spec {part!r}: expected key=value "
                    f"(no '=' found)"
                )
            field = cls._ALIASES.get(key)
            if field is None:
                raise ValueError(
                    f"unknown fault kind {key!r} in {part!r}: expected one "
                    f"of {sorted(set(cls._ALIASES))}"
                )
            if field in kwargs:
                raise ValueError(
                    f"fault kind {key!r} given twice (second: {part!r})"
                )
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"bad fault value {raw.strip()!r} in {part!r}: "
                    f"not a number"
                ) from None
            if field == "reorder_delay":
                if value < 0.0:
                    raise ValueError(
                        f"reorder delay must be non-negative, got {part!r}"
                    )
            elif not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault probability out of [0, 1] in {part!r}"
                )
            kwargs[field] = value
        return cls(**kwargs)

    @property
    def is_quiet(self) -> bool:
        """No per-message link faults (process faults don't count)."""

        return not (self.drop or self.duplicate or self.reorder or self.corrupt)

    @property
    def has_process_faults(self) -> bool:
        return bool(self.kill or self.torn)


@dataclass(frozen=True, slots=True)
class FaultDecision:
    """What the injector decided for one message on one link."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0
    corrupt: bool = False

    @property
    def is_clean(self) -> bool:
        return not (self.drop or self.duplicate or self.corrupt) and (
            self.extra_delay == 0.0
        )


NO_FAULT = FaultDecision()


class FaultInjector:
    """Seeded, deterministic per-link fault decisions.

    The ``i``-th message on a link draws one unit per fault kind from
    ``blake2b(seed | kind | sender | channel | i)``, so the fault pattern
    of a run is a pure function of the seed and the per-link message
    sequence — reruns and shard-partition changes that preserve per-link
    order reproduce it exactly.  A quiet plan draws nothing.
    """

    __slots__ = ("plan", "seed", "_ordinals")

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._ordinals: dict[tuple[str, str], int] = {}

    def _unit(self, kind: str, link: tuple[str, str], ordinal: int) -> float:
        digest = blake2b(
            f"{self.seed}|{kind}|{link[0]}|{link[1]}|{ordinal}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def process_fault(self, shard: int, window: int) -> Optional[str]:
        """Deterministic process-fault draw for one shard's next window.

        Returns ``"torn"``, ``"kill"``, or ``None``.  Keyed like the
        per-message draws — ``blake2b(seed | kind | shard | window)`` —
        so the same seed kills the same shard at the same window on
        every run, which is what makes the kill-injection differential
        reproducible.  ``torn`` wins when both fire: it is a kill plus
        a mangled WAL tail.
        """

        plan = self.plan
        link = (f"shard-{shard}", "@window")
        if plan.torn > 0 and self._unit("torn", link, window) < plan.torn:
            return "torn"
        if plan.kill > 0 and self._unit("kill", link, window) < plan.kill:
            return "kill"
        return None

    def decide(
        self,
        sender: Optional[Principal],
        channel: Optional[Channel],
    ) -> FaultDecision:
        plan = self.plan
        if plan.is_quiet:
            return NO_FAULT
        link = (
            sender.name if sender is not None else "",
            channel.name if channel is not None else "",
        )
        ordinal = self._ordinals.get(link, 0)
        self._ordinals[link] = ordinal + 1
        drop = plan.drop > 0 and self._unit("drop", link, ordinal) < plan.drop
        if drop:
            # a dropped message manifests no other fault
            return FaultDecision(drop=True)
        duplicate = (
            plan.duplicate > 0
            and self._unit("dup", link, ordinal) < plan.duplicate
        )
        reorder = (
            plan.reorder > 0
            and self._unit("reorder", link, ordinal) < plan.reorder
        )
        corrupt = (
            plan.corrupt > 0
            and self._unit("corrupt", link, ordinal) < plan.corrupt
        )
        if not (duplicate or reorder or corrupt):
            return NO_FAULT
        return FaultDecision(
            drop=False,
            duplicate=duplicate,
            extra_delay=plan.reorder_delay if reorder else 0.0,
            corrupt=corrupt,
        )


class Network:
    """Routes messages to callbacks after a sampled per-link delay."""

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel = LatencyModel(),
        topology: Optional[Topology] = None,
        sampler: Optional[KeyedLatencySampler] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency
        self.topology = topology
        self.sampler = sampler
        self.faults = faults
        self.messages_in_flight = 0

    def fault_for(
        self,
        sender: Optional[Principal] = None,
        channel: Optional[Channel] = None,
    ) -> FaultDecision:
        """The injector's decision for the next message on this link.

        Consumes one per-link ordinal; call exactly once per send.
        Returns :data:`NO_FAULT` when no injector is installed.
        """

        if self.faults is None:
            return NO_FAULT
        return self.faults.decide(sender, channel)

    def latency_for(
        self,
        sender: Optional[Principal] = None,
        channel: Optional[Channel] = None,
    ) -> LatencyModel:
        """The model governing the ``sender → channel`` link."""

        if self.topology is None:
            return self.latency
        return self.topology(sender, channel)

    def sample_latency(
        self,
        model: LatencyModel,
        sender: Optional[Principal] = None,
        channel: Optional[Channel] = None,
    ) -> float:
        """One latency draw — keyed when a sampler is installed.

        The cross-shard router calls this too, so local and remote
        sends on the same link share one ordinal sequence and the draw
        a message gets does not depend on where its receiver lives.
        """

        if self.sampler is not None:
            return self.sampler.sample(model, sender, channel)
        return model.sample(self.simulator.rng)

    def deliver(
        self,
        callback: Callable[[], None],
        sender: Optional[Principal] = None,
        channel: Optional[Channel] = None,
        extra_delay: float = 0.0,
    ) -> None:
        """Schedule ``callback`` after the link's latency sample.

        ``extra_delay`` is added on top of the sampled latency — the
        fault injector's *reorder* manifestation (the draw itself stays
        untouched so surrounding messages keep their latencies).

        The in-flight counter is balanced in a ``finally``: a callback
        that raises (middleware vetting is allowed to throw on hostile
        input) still retires its message, so the counter always returns
        to zero on a drained simulator instead of drifting upward.
        """

        self.messages_in_flight += 1

        def arrive() -> None:
            try:
                callback()
            finally:
                self.messages_in_flight -= 1

        model = self.latency_for(sender, channel)
        self.simulator.schedule(
            self.sample_latency(model, sender, channel) + extra_delay, arrive
        )

    def deliver_at(self, callback: Callable[[], None], time: float) -> None:
        """Deliver at an absolute arrival instant (cross-shard ingress).

        The latency was already sampled on the sending shard and is
        baked into ``time``; this side only accounts the message as in
        flight until the scheduled arrival runs.
        """

        self.messages_in_flight += 1

        def arrive() -> None:
            try:
                callback()
            finally:
                self.messages_in_flight -= 1

        self.simulator.schedule_at(time, arrive)
