"""Simulated network: latency model and delivery.

A deliberately small abstraction: messages take ``base + U(0, jitter)``
time units to reach their channel manager, sampled from the simulator's
seeded generator — latency never depends on size, and byte accounting
lives entirely in :class:`repro.runtime.metrics.RuntimeMetrics`
(deferred sizer thunks).  Loss and partition are out of scope — the
calculus' semantics assumes reliable (if arbitrarily delayed) delivery,
and the paper's claims do not touch fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.runtime.simulator import Simulator

__all__ = ["LatencyModel", "Network"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Uniform latency ``base + U(0, jitter)``."""

    base: float = 1.0
    jitter: float = 0.5

    def sample(self, rng) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.random() * self.jitter


class Network:
    """Routes messages to callbacks after a sampled delay."""

    def __init__(
        self, simulator: Simulator, latency: LatencyModel = LatencyModel()
    ) -> None:
        self.simulator = simulator
        self.latency = latency
        self.messages_in_flight = 0

    def deliver(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after a latency sample."""

        self.messages_in_flight += 1

        def arrive() -> None:
            self.messages_in_flight -= 1
            callback()

        self.simulator.schedule(self.latency.sample(self.simulator.rng), arrive)
