"""Simulated network: latency models, link topology, and delivery.

A deliberately small abstraction: a message takes ``base + U(0, jitter)``
time units to reach its channel manager, sampled from the simulator's
seeded generator — latency never depends on size, and byte accounting
lives entirely in :class:`repro.runtime.metrics.RuntimeMetrics`
(deferred sizer thunks).  Loss and partition are out of scope — the
calculus' semantics assumes reliable (if arbitrarily delayed) delivery,
and the paper's claims do not touch fault tolerance.

Which *model* a message samples from may vary per link: a ``topology``
callable maps ``(sender principal, channel)`` to the
:class:`LatencyModel` for that hop, so a multi-region deployment can
make intra-region hops free (they ride the simulator's O(1) run queue)
while cross-region hops pay distance (they go to the timed heap).  A
zero link (``LatencyModel(0.0, 0.0)``) samples no jitter and draws
nothing from the generator, so adding or removing zero links never
perturbs the random sequence timed links see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.names import Channel, Principal
from repro.runtime.simulator import Simulator

__all__ = ["LatencyModel", "Network", "ZERO_LATENCY"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Uniform latency ``base + U(0, jitter)``."""

    base: float = 1.0
    jitter: float = 0.5

    def sample(self, rng) -> float:
        if self.jitter <= 0:
            return self.base
        return self.base + rng.random() * self.jitter


ZERO_LATENCY = LatencyModel(0.0, 0.0)
"""A free link: zero-delay delivery, scheduled on the run queue."""

Topology = Callable[[Optional[Principal], Optional[Channel]], LatencyModel]


class Network:
    """Routes messages to callbacks after a sampled per-link delay."""

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel = LatencyModel(),
        topology: Optional[Topology] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency
        self.topology = topology
        self.messages_in_flight = 0

    def latency_for(
        self,
        sender: Optional[Principal] = None,
        channel: Optional[Channel] = None,
    ) -> LatencyModel:
        """The model governing the ``sender → channel`` link."""

        if self.topology is None:
            return self.latency
        return self.topology(sender, channel)

    def deliver(
        self,
        callback: Callable[[], None],
        sender: Optional[Principal] = None,
        channel: Optional[Channel] = None,
    ) -> None:
        """Schedule ``callback`` after the link's latency sample.

        The in-flight counter is balanced in a ``finally``: a callback
        that raises (middleware vetting is allowed to throw on hostile
        input) still retires its message, so the counter always returns
        to zero on a drained simulator instead of drifting upward.
        """

        self.messages_in_flight += 1

        def arrive() -> None:
            try:
                callback()
            finally:
                self.messages_in_flight -= 1

        model = self.latency_for(sender, channel)
        self.simulator.schedule(model.sample(self.simulator.rng), arrive)
