"""Recursive-descent parser for the concrete syntax.

The parser resolves the calculus' three name sorts contextually:

* a name directly followed by ``[`` hosts a located process — it is a
  **principal** (a pre-scan collects these before parsing, so forward
  references work); extra principal names can be supplied via the
  ``principals`` argument for data-only principals (e.g. a value ``d``
  sent in a payload when ``d`` never hosts a process);
* a name bound by an enclosing input binder is a **variable**;
* every other name in identifier position is a **channel**.

Provenance annotations (``v:{a!{}}``) always force the value reading.

Patterns inside input prefixes use the sample language of Table 3
(:mod:`repro.patterns.parse`); the calculus itself remains parametric in
the pattern language, but the concrete syntax commits to the paper's
sample language.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import ParseError
from repro.core.names import Channel, Principal, Variable
from repro.core.patterns import Pattern
from repro.core.process import (
    Inaction,
    InputBranch,
    InputSum,
    Match,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.provenance import (
    EMPTY,
    Event,
    InputEvent,
    OutputEvent,
    Provenance,
)
from repro.core.system import Located, Message, SysParallel, SysRestriction, System
from repro.core.values import AnnotatedValue, Identifier
from repro.lang.lexer import Token, TokenStream, tokenize
from repro.patterns.ast import AnyPattern
from repro.patterns.parse import parse_pattern_stream

__all__ = ["parse_system", "parse_process", "parse_provenance", "parse_identifier"]


def parse_system(source: str, principals: Iterable[str] = ()) -> System:
    """Parse a complete system term."""

    tokens = tokenize(source)
    parser = _Parser(TokenStream(tokens), _scan_principals(tokens, principals))
    system = parser.system()
    parser.stream.expect("EOF")
    return system


def parse_process(source: str, principals: Iterable[str] = ()) -> Process:
    """Parse a complete process term."""

    tokens = tokenize(source)
    parser = _Parser(TokenStream(tokens), set(principals))
    process = parser.process()
    parser.stream.expect("EOF")
    return process


def parse_provenance(source: str) -> Provenance:
    """Parse a braced provenance literal, e.g. ``{c?{}; s!{}}``."""

    tokens = tokenize(source)
    parser = _Parser(TokenStream(tokens), set())
    provenance = parser.provenance()
    parser.stream.expect("EOF")
    return provenance


def parse_identifier(source: str, principals: Iterable[str] = ()) -> Identifier:
    """Parse a standalone identifier (value, annotated value or variable).

    Free bare names parse as channels unless listed in ``principals``.
    """

    tokens = tokenize(source)
    parser = _Parser(TokenStream(tokens), set(principals))
    identifier = parser.identifier()
    parser.stream.expect("EOF")
    return identifier


def _scan_principals(tokens: list[Token], extra: Iterable[str]) -> set[str]:
    """Names immediately followed by ``[`` host located processes."""

    principals = set(extra)
    for index in range(len(tokens) - 1):
        if tokens[index].kind == "NAME" and tokens[index + 1].kind == "[":
            principals.add(tokens[index].text)
    return principals


class _Parser:
    def __init__(self, stream: TokenStream, principals: set[str]) -> None:
        self.stream = stream
        self.principals = principals
        self._bound: list[str] = []

    # -- systems ---------------------------------------------------------

    def system(self) -> System:
        parts = [self.sysatom()]
        while self.stream.accept("||"):
            parts.append(self.sysatom())
        if len(parts) == 1:
            return parts[0]
        return SysParallel(tuple(parts))

    def sysatom(self) -> System:
        stream = self.stream
        if stream.at("("):
            if stream.peek(1).kind == "new":
                stream.expect("(")
                stream.expect("new")
                name = stream.expect("NAME").text
                stream.expect(")")
                body = self.sysatom()
                return SysRestriction(Channel(name), body)
            stream.expect("(")
            system = self.system()
            stream.expect(")")
            return system
        if stream.at("NUMBER") and stream.current.text == "0":
            stream.advance()
            return SysParallel(())
        if stream.at("NAME"):
            if stream.peek(1).kind == "[":
                name = stream.advance().text
                self.principals.add(name)
                stream.expect("[")
                process = self.process()
                stream.expect("]")
                return Located(Principal(name), process)
            if stream.peek(1).kind == "<<":
                name = stream.advance().text
                stream.expect("<<")
                payload = self._value_list(">>")
                stream.expect(">>")
                return Message(Channel(name), tuple(payload))
        raise stream.error(
            f"expected a system, found {stream.current.kind!r}"
        )

    def _value_list(self, closer: str) -> list[AnnotatedValue]:
        values: list[AnnotatedValue] = []
        if self.stream.at(closer):
            return values
        while True:
            identifier = self.identifier()
            if not isinstance(identifier, AnnotatedValue):
                raise self.stream.error(
                    f"message payloads must be values, found variable"
                    f" {identifier}"
                )
            values.append(identifier)
            if not self.stream.accept(","):
                return values

    # -- processes ---------------------------------------------------------

    def process(self) -> Process:
        parts = [self.sumterm()]
        while self.stream.accept("|"):
            parts.append(self.sumterm())
        if len(parts) == 1:
            return parts[0]
        return Parallel(tuple(parts))

    def sumterm(self) -> Process:
        first = self.patom()
        if not self.stream.at("+"):
            return first
        summands = [self._as_single_sum(first)]
        while self.stream.accept("+"):
            summands.append(self._as_single_sum(self.patom()))
        channel = summands[0].channel
        for other in summands[1:]:
            if other.channel != channel:
                raise self.stream.error(
                    "input-guarded sums must share one channel "
                    f"({other.channel} vs {channel})"
                )
        branches = tuple(
            branch for summand in summands for branch in summand.branches
        )
        return InputSum(channel, branches)

    def _as_single_sum(self, process: Process) -> InputSum:
        if isinstance(process, InputSum):
            return process
        raise self.stream.error("only input prefixes may be summed with '+'")

    def patom(self) -> Process:
        stream = self.stream
        if stream.at("("):
            if stream.peek(1).kind == "new":
                stream.expect("(")
                stream.expect("new")
                name = stream.expect("NAME").text
                stream.expect(")")
                return Restriction(Channel(name), self.patom())
            stream.expect("(")
            process = self.process()
            stream.expect(")")
            return process
        if stream.accept("*"):
            return Replication(self.patom())
        if stream.at("NUMBER") and stream.current.text == "0":
            stream.advance()
            return Inaction()
        if stream.at("if"):
            return self._match()
        if stream.at("NAME"):
            subject = self.identifier()
            if stream.accept("<"):
                payload: list[Identifier] = []
                if not stream.at(">"):
                    while True:
                        payload.append(self.identifier())
                        if not stream.accept(","):
                            break
                stream.expect(">")
                return Output(subject, tuple(payload))
            if stream.at("("):
                branch = self._input_branch()
                return InputSum(subject, (branch,))
            raise stream.error(
                "expected '<' (output) or '(' (input) after channel"
            )
        raise stream.error(f"expected a process, found {stream.current.kind!r}")

    def _match(self) -> Process:
        stream = self.stream
        stream.expect("if")
        left = self.identifier()
        stream.expect("=")
        right = self.identifier()
        stream.expect("then")
        then_branch = self.patom()
        stream.expect("else")
        else_branch = self.patom()
        return Match(left, right, then_branch, else_branch)

    def _input_branch(self) -> InputBranch:
        stream = self.stream
        stream.expect("(")
        patterns: list[Pattern] = []
        binders: list[Variable] = []
        if not stream.at(")"):
            while True:
                pattern, binder = self._binding()
                patterns.append(pattern)
                binders.append(binder)
                if not stream.accept(","):
                    break
        stream.expect(")")
        stream.expect(".")
        self._bound.extend(binder.name for binder in binders)
        try:
            continuation = self.patom()
        finally:
            del self._bound[len(self._bound) - len(binders) :]
        return InputBranch(tuple(patterns), tuple(binders), continuation)

    def _binding(self) -> tuple[Pattern, Variable]:
        stream = self.stream
        mark = stream.mark()
        try:
            pattern = parse_pattern_stream(stream)
            if stream.accept("as"):
                name = stream.expect("NAME").text
                return pattern, Variable(name)
        except ParseError:
            pass
        stream.reset(mark)
        name = stream.expect("NAME").text
        return AnyPattern(), Variable(name)

    # -- identifiers and provenance ---------------------------------------

    def identifier(self) -> Identifier:
        stream = self.stream
        name = stream.expect("NAME").text
        if stream.at(":"):
            stream.expect(":")
            provenance = self.provenance()
            return AnnotatedValue(self._plain(name), provenance)
        if name in self._bound:
            return Variable(name)
        return AnnotatedValue(self._plain(name), EMPTY)

    def _plain(self, name: str):
        if name in self.principals:
            return Principal(name)
        return Channel(name)

    def provenance(self) -> Provenance:
        stream = self.stream
        stream.expect("{")
        events: list[Event] = []
        if not stream.at("}"):
            while True:
                events.append(self._event())
                if not stream.accept(";"):
                    break
        stream.expect("}")
        return Provenance(tuple(events))

    def _event(self) -> Event:
        stream = self.stream
        name = stream.expect("NAME").text
        principal = Principal(name)
        self.principals.add(name)
        if stream.accept("!"):
            return OutputEvent(principal, self.provenance())
        if stream.accept("?"):
            return InputEvent(principal, self.provenance())
        raise stream.error("expected '!' or '?' in provenance event")
