"""Concrete syntax: lexer, parser and pretty-printer."""

from repro.lang.lexer import Token, TokenStream, tokenize
from repro.lang.parser import (
    parse_identifier,
    parse_process,
    parse_provenance,
    parse_system,
)
from repro.lang.pretty import (
    pretty_identifier,
    pretty_pattern,
    pretty_process,
    pretty_provenance,
    pretty_system,
)

__all__ = [name for name in dir() if not name.startswith("_")]
