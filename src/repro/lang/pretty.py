"""Pretty-printer for the concrete syntax.

Emits text that :mod:`repro.lang.parser` parses back to an equal AST (the
round-trip property is part of the test-suite).  The printer is total on
well-formed terms and deterministic; it is the canonical serialization —
the ``__str__`` methods on AST nodes are looser, human-oriented variants
(e.g. they render the empty provenance as ``ε``).

Syntax summary::

    system      a[P]   m<<v1, v2>>   (new n)(S)   S || T   0
    process     m<v>   m(pi as x).P   (m(..).P + m(..).Q)
                if w = w' then P else Q   (new n)(P)   (P | Q)   *(P)   0
    value       v          (empty provenance)
                v:{a!{}; b?{a!{}}}
    pattern     any   eps   c!any;any   (p|q)   (p)*   (~-o)?any
"""

from __future__ import annotations

from repro.core.names import Variable
from repro.core.patterns import Pattern
from repro.core.process import (
    Inaction,
    InputBranch,
    InputSum,
    Match,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.provenance import Event, Provenance
from repro.core.system import Located, Message, SysParallel, SysRestriction, System
from repro.core.values import AnnotatedValue, Identifier

__all__ = [
    "pretty_provenance",
    "pretty_identifier",
    "pretty_pattern",
    "pretty_process",
    "pretty_system",
]


def pretty_provenance(provenance: Provenance) -> str:
    """``{a!{}; b?{a!{}}}`` — always braced, empty provenance is ``{}``."""

    inner = "; ".join(_pretty_event(event) for event in provenance)
    return "{" + inner + "}"


def _pretty_event(event: Event) -> str:
    return (
        f"{event.principal.name}{event.symbol}"
        f"{pretty_provenance(event.channel_provenance)}"
    )


def pretty_identifier(identifier: Identifier) -> str:
    """A variable name, a bare value, or ``value:{…}``."""

    if isinstance(identifier, Variable):
        return identifier.name
    if identifier.provenance.is_empty:
        return identifier.value.name
    return f"{identifier.value.name}:{pretty_provenance(identifier.provenance)}"


def pretty_pattern(pattern: Pattern) -> str:
    """Sample patterns print through their ``__str__`` (already parseable)."""

    return str(pattern)


def pretty_process(process: Process) -> str:
    """Emit a process in parser-atom form (safe in any process position)."""

    if isinstance(process, Output):
        payload = ", ".join(pretty_identifier(w) for w in process.payload)
        return f"{pretty_identifier(process.channel)}<{payload}>"
    if isinstance(process, InputSum):
        prefixes = [
            _pretty_prefix(process.channel, branch) for branch in process.branches
        ]
        if len(prefixes) == 1:
            return prefixes[0]
        return "(" + " + ".join(prefixes) + ")"
    if isinstance(process, Match):
        return (
            f"if {pretty_identifier(process.left)} = "
            f"{pretty_identifier(process.right)} "
            f"then {pretty_process(process.then_branch)} "
            f"else {pretty_process(process.else_branch)}"
        )
    if isinstance(process, Restriction):
        return f"(new {process.channel.name})({pretty_process(process.body)})"
    if isinstance(process, Parallel):
        if not process.parts:
            return "0"
        return "(" + " | ".join(pretty_process(p) for p in process.parts) + ")"
    if isinstance(process, Replication):
        return f"*({pretty_process(process.body)})"
    if isinstance(process, Inaction):
        return "0"
    raise TypeError(f"not a process: {process!r}")


def _pretty_prefix(channel: Identifier, branch: InputBranch) -> str:
    bindings = ", ".join(
        f"{pretty_pattern(pattern)} as {binder.name}"
        for pattern, binder in zip(branch.patterns, branch.binders)
    )
    return (
        f"{pretty_identifier(channel)}({bindings})"
        f".{pretty_process(branch.continuation)}"
    )


def pretty_system(system: System) -> str:
    """Emit a system in parser-compatible form."""

    if isinstance(system, Located):
        return f"{system.principal.name}[{pretty_process(system.process)}]"
    if isinstance(system, Message):
        payload = ", ".join(pretty_identifier(w) for w in system.payload)
        return f"{system.channel.name}<<{payload}>>"
    if isinstance(system, SysRestriction):
        return f"(new {system.channel.name})({pretty_system(system.body)})"
    if isinstance(system, SysParallel):
        if not system.parts:
            return "0"
        return " || ".join(_pretty_sysatom(part) for part in system.parts)
    raise TypeError(f"not a system: {system!r}")


def _pretty_sysatom(system: System) -> str:
    if isinstance(system, SysParallel):
        return f"({pretty_system(system)})"
    return pretty_system(system)
