"""Tokenizer for the concrete syntax of the calculus and its patterns.

One lexer serves both the system/process grammar and the pattern grammar
(patterns occur inside input prefixes, so they share a token stream).  The
token vocabulary:

====================  =======================================
kind                  examples
====================  =======================================
``NAME``              ``m``, ``judge1``, ``x'``
``keyword``           ``if then else new as any eps``
punctuation           ``[ ] ( ) { } < > << >> | || + - * ! ?``
                      ``; : , . =``
``EOF``               end of input
====================  =======================================

Comments run from ``#`` to end of line.  ``<<``/``>>``/``||`` are matched
greedily before ``<``/``>``/``|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ParseError

__all__ = ["Token", "TokenStream", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({"if", "then", "else", "new", "as", "any", "eps", "none"})

_PUNCTUATION = [
    "<<",
    ">>",
    "||",
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "|",
    "+",
    "-",
    "*",
    "!",
    "?",
    "~",
    ";",
    ":",
    ",",
    ".",
    "=",
]


@dataclass(frozen=True, slots=True)
class Token:
    """A lexeme with its source position (1-based line/column)."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on foreign bytes."""

    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (
                source[index].isalnum() or source[index] in "_'"
            ):
                index += 1
            text = source[start:index]
            kind = text if text in KEYWORDS else "NAME"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("NUMBER", text, line, column))
            column += index - start
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, index):
                tokens.append(Token(punct, punct, line, column))
                index += len(punct)
                column += len(punct)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


class TokenStream:
    """A cursor over a token list with lookahead and backtracking.

    The parser combinators use :meth:`mark` / :meth:`reset` for the one
    ambiguous corner of the grammar (group parentheses vs pattern
    parentheses).
    """

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def at(self, *kinds: str) -> bool:
        """True when the current token's kind is one of ``kinds``."""

        return self.current.kind in kinds

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._index += 1
        return token

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise ParseError(
                f"expected {kind!r}, found {self.current.kind!r}"
                f" ({self.current.text!r})",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def accept(self, kind: str) -> Token | None:
        """Consume and return the current token if it has ``kind``."""

        if self.current.kind == kind:
            return self.advance()
        return None

    def mark(self) -> int:
        return self._index

    def reset(self, mark: int) -> None:
        self._index = mark

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.line, self.current.column)
