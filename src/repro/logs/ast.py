"""Logs: records of the past behaviour of systems (§3.1).

A log is an edge-labelled tree whose edges carry *actions*; an edge closer
to the root happened more recently than the edges below it, and sibling
subtrees are temporally independent (their relative order is unknown)::

    φ ::= ∅  |  α; φ  |  φ | ψ
    α ::= a.snd(V, V')  |  a.rcv(V, V')  |  a.ift(V, V')  |  a.iff(V, V')

Action operands range over ``Dx = V ∪ X ∪ {?}``: plain values, variables
standing for *unknown* values, and the special symbol ``?`` for an unknown
private (restricted) channel name.  In ``a.snd(x, V); φ`` the variable
``x`` in the channel position binds its occurrences in ``φ``; occurrences
in value positions are free.

We generalize actions to polyadic operand tuples (the calculus is
polyadic): ``a.snd(V, V₁…Vₖ)`` records a send of a k-tuple.  The paper's
monadic actions are the ``k = 1`` case.

Logs are compared modulo alpha-conversion and the commutative-monoid laws
of ``|`` — equality here is syntactic; the quotient is taken by the
information order in :mod:`repro.logs.order`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.core.names import Channel, Principal, Variable

__all__ = [
    "Unknown",
    "LogTerm",
    "ActionKind",
    "Action",
    "Log",
    "LogEmpty",
    "LogAction",
    "LogPar",
    "EMPTY_LOG",
    "log_par",
    "log_actions",
    "log_size",
    "log_free_variables",
    "chain_prefix",
    "format_log",
]


@dataclass(frozen=True, slots=True)
class Unknown:
    """The symbol ``?`` — an unknown private channel name."""

    def __str__(self) -> str:
        return "?"


LogTerm = Union[Channel, Principal, Variable, Unknown]
"""``U, V ∈ Dx = V ∪ X ∪ {?}``."""


class ActionKind(enum.Enum):
    """The four action constructors of §3.1."""

    SND = "snd"
    RCV = "rcv"
    IFT = "ift"
    IFF = "iff"


@dataclass(frozen=True, slots=True)
class Action:
    """``a.kind(operands…)``.

    For ``snd``/``rcv`` the first operand is the channel (the binding
    position) and the rest are the transmitted values; for ``ift``/``iff``
    the two operands are the compared values.
    """

    kind: ActionKind
    principal: Principal
    operands: tuple[LogTerm, ...]

    @property
    def binding_variable(self) -> Variable | None:
        """The channel-position variable bound by this action, if any."""

        if self.kind in (ActionKind.SND, ActionKind.RCV) and self.operands:
            first = self.operands[0]
            if isinstance(first, Variable):
                return first
        return None

    def free_variables(self) -> frozenset[Variable]:
        """Variables in non-binding positions."""

        result = frozenset(
            term for term in self.operands if isinstance(term, Variable)
        )
        binder = self.binding_variable
        if binder is not None:
            result -= {binder}
        return result

    def __str__(self) -> str:
        operands = ", ".join(str(term) for term in self.operands)
        return f"{self.principal}.{self.kind.value}({operands})"


class Log(abc.ABC):
    """Base class of logs."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class LogEmpty(Log):
    """``∅`` — the log that records nothing."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class LogAction(Log):
    """``α; φ`` — action ``α`` happened after everything in ``φ``."""

    action: Action
    child: Log

    def __str__(self) -> str:
        return format_log(self)


@dataclass(frozen=True, slots=True)
class LogPar(Log):
    """``φ | ψ`` — temporally independent records (n-ary)."""

    children: tuple[Log, ...] = field(default=())

    def __str__(self) -> str:
        return format_log(self)


EMPTY_LOG = LogEmpty()


def log_par(*logs: Log) -> Log:
    """Smart composition: flatten nested ``|`` and drop ``∅`` units."""

    flat: list[Log] = []
    for log in logs:
        if isinstance(log, LogEmpty):
            continue
        if isinstance(log, LogPar):
            flat.extend(log.children)
        else:
            flat.append(log)
    if not flat:
        return EMPTY_LOG
    if len(flat) == 1:
        return flat[0]
    return LogPar(tuple(flat))


def log_actions(log: Log) -> Iterator[Action]:
    """Every action in the log, root-to-leaf, left-to-right.

    Iterative: the global log of a monitored run is a cons chain one
    action deep per step, far deeper than Python's recursion limit.
    """

    stack = [log]
    while stack:
        node = stack.pop()
        if isinstance(node, LogEmpty):
            continue
        if isinstance(node, LogAction):
            yield node.action
            stack.append(node.child)
        elif isinstance(node, LogPar):
            stack.extend(reversed(node.children))
        else:
            raise TypeError(f"not a log: {node!r}")


def log_size(log: Log) -> int:
    """Number of actions recorded."""

    return sum(1 for _ in log_actions(log))


def log_free_variables(log: Log) -> frozenset[Variable]:
    """Free variables of a log (``snd``/``rcv`` channel positions bind).

    Iterative scope-tracking walk (binders bind strictly *below* their
    action, so a multiset of path binders decides freeness in one pass).
    """

    free: set[Variable] = set()
    bound: dict[Variable, int] = {}
    stack: list[tuple[int, object]] = [(0, log)]
    while stack:
        leaving, node = stack.pop()
        if leaving:
            binder = node  # the Variable whose scope ends here
            remaining = bound[binder] - 1
            if remaining:
                bound[binder] = remaining
            else:
                del bound[binder]
            continue
        if isinstance(node, LogEmpty):
            continue
        if isinstance(node, LogAction):
            for variable in node.action.free_variables():
                if variable not in bound:
                    free.add(variable)
            binder = node.action.binding_variable
            if binder is not None:
                bound[binder] = bound.get(binder, 0) + 1
                stack.append((1, binder))
            stack.append((0, node.child))
        elif isinstance(node, LogPar):
            stack.extend((0, child) for child in reversed(node.children))
        else:
            raise TypeError(f"not a log: {node!r}")
    return frozenset(free)


def chain_prefix(new: Log, old: Log) -> "list[LogAction] | None":
    """The actions ``new`` prepends onto ``old``, outermost first.

    Detects the one way a global log ever grows — ``→m`` conses actions
    onto the *same* log object, so the shared suffix is found by
    identity.  Returns ``None`` when ``new`` is not such an extension
    (different lineage, or growth through anything but ``LogAction``);
    ``[]`` when ``new`` *is* ``old``.  Both the log index's O(new
    actions) extension and the online monitor's lineage check build on
    this.
    """

    spine: list[LogAction] = []
    node = new
    while node is not old:
        if not isinstance(node, LogAction):
            return None
        spine.append(node)
        node = node.child
    return spine


def format_log(log: Log) -> str:
    """Render a log without recursing down its action chain."""

    parts: list[str] = []
    stack: list[object] = [log]
    while stack:
        node = stack.pop()
        if isinstance(node, str):
            parts.append(node)
        elif isinstance(node, LogEmpty):
            parts.append("0")
        elif isinstance(node, LogAction):
            parts.append(str(node.action))
            if not isinstance(node.child, LogEmpty):
                stack.append(node.child)
                stack.append("; ")
        elif isinstance(node, LogPar):
            if not node.children:
                parts.append("0")
                continue
            parts.append("(")
            stack.append(")")
            last = len(node.children) - 1
            for position, child in enumerate(reversed(node.children)):
                stack.append(child)
                if position != last:
                    stack.append(" | ")
        else:
            raise TypeError(f"not a log: {node!r}")
    return "".join(parts)
