"""Logs: records of the past behaviour of systems (§3.1).

A log is an edge-labelled tree whose edges carry *actions*; an edge closer
to the root happened more recently than the edges below it, and sibling
subtrees are temporally independent (their relative order is unknown)::

    φ ::= ∅  |  α; φ  |  φ | ψ
    α ::= a.snd(V, V')  |  a.rcv(V, V')  |  a.ift(V, V')  |  a.iff(V, V')

Action operands range over ``Dx = V ∪ X ∪ {?}``: plain values, variables
standing for *unknown* values, and the special symbol ``?`` for an unknown
private (restricted) channel name.  In ``a.snd(x, V); φ`` the variable
``x`` in the channel position binds its occurrences in ``φ``; occurrences
in value positions are free.

We generalize actions to polyadic operand tuples (the calculus is
polyadic): ``a.snd(V, V₁…Vₖ)`` records a send of a k-tuple.  The paper's
monadic actions are the ``k = 1`` case.

Logs are compared modulo alpha-conversion and the commutative-monoid laws
of ``|`` — equality here is syntactic; the quotient is taken by the
information order in :mod:`repro.logs.order`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.core.names import Channel, Principal, Variable

__all__ = [
    "Unknown",
    "LogTerm",
    "ActionKind",
    "Action",
    "Log",
    "LogEmpty",
    "LogAction",
    "LogPar",
    "EMPTY_LOG",
    "log_par",
    "log_actions",
    "log_size",
    "log_free_variables",
]


@dataclass(frozen=True, slots=True)
class Unknown:
    """The symbol ``?`` — an unknown private channel name."""

    def __str__(self) -> str:
        return "?"


LogTerm = Union[Channel, Principal, Variable, Unknown]
"""``U, V ∈ Dx = V ∪ X ∪ {?}``."""


class ActionKind(enum.Enum):
    """The four action constructors of §3.1."""

    SND = "snd"
    RCV = "rcv"
    IFT = "ift"
    IFF = "iff"


@dataclass(frozen=True, slots=True)
class Action:
    """``a.kind(operands…)``.

    For ``snd``/``rcv`` the first operand is the channel (the binding
    position) and the rest are the transmitted values; for ``ift``/``iff``
    the two operands are the compared values.
    """

    kind: ActionKind
    principal: Principal
    operands: tuple[LogTerm, ...]

    @property
    def binding_variable(self) -> Variable | None:
        """The channel-position variable bound by this action, if any."""

        if self.kind in (ActionKind.SND, ActionKind.RCV) and self.operands:
            first = self.operands[0]
            if isinstance(first, Variable):
                return first
        return None

    def free_variables(self) -> frozenset[Variable]:
        """Variables in non-binding positions."""

        result = frozenset(
            term for term in self.operands if isinstance(term, Variable)
        )
        binder = self.binding_variable
        if binder is not None:
            result -= {binder}
        return result

    def __str__(self) -> str:
        operands = ", ".join(str(term) for term in self.operands)
        return f"{self.principal}.{self.kind.value}({operands})"


class Log(abc.ABC):
    """Base class of logs."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class LogEmpty(Log):
    """``∅`` — the log that records nothing."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class LogAction(Log):
    """``α; φ`` — action ``α`` happened after everything in ``φ``."""

    action: Action
    child: Log

    def __str__(self) -> str:
        if isinstance(self.child, LogEmpty):
            return str(self.action)
        return f"{self.action}; {self.child}"


@dataclass(frozen=True, slots=True)
class LogPar(Log):
    """``φ | ψ`` — temporally independent records (n-ary)."""

    children: tuple[Log, ...] = field(default=())

    def __str__(self) -> str:
        if not self.children:
            return "0"
        return "(" + " | ".join(str(c) for c in self.children) + ")"


EMPTY_LOG = LogEmpty()


def log_par(*logs: Log) -> Log:
    """Smart composition: flatten nested ``|`` and drop ``∅`` units."""

    flat: list[Log] = []
    for log in logs:
        if isinstance(log, LogEmpty):
            continue
        if isinstance(log, LogPar):
            flat.extend(log.children)
        else:
            flat.append(log)
    if not flat:
        return EMPTY_LOG
    if len(flat) == 1:
        return flat[0]
    return LogPar(tuple(flat))


def log_actions(log: Log) -> Iterator[Action]:
    """Every action in the log, root-to-leaf, left-to-right."""

    if isinstance(log, LogEmpty):
        return
    elif isinstance(log, LogAction):
        yield log.action
        yield from log_actions(log.child)
    elif isinstance(log, LogPar):
        for child in log.children:
            yield from log_actions(child)
    else:
        raise TypeError(f"not a log: {log!r}")


def log_size(log: Log) -> int:
    """Number of actions recorded."""

    return sum(1 for _ in log_actions(log))


def log_free_variables(log: Log) -> frozenset[Variable]:
    """Free variables of a log (``snd``/``rcv`` channel positions bind)."""

    if isinstance(log, LogEmpty):
        return frozenset()
    if isinstance(log, LogAction):
        below = log_free_variables(log.child)
        binder = log.action.binding_variable
        if binder is not None:
            below -= {binder}
        return below | log.action.free_variables()
    if isinstance(log, LogPar):
        result: frozenset[Variable] = frozenset()
        for child in log.children:
            result |= log_free_variables(child)
        return result
    raise TypeError(f"not a log: {log!r}")
