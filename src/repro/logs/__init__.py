"""Logs, their information order and the denotation of provenance (§3)."""

from repro.logs.ast import (
    Action,
    ActionKind,
    EMPTY_LOG,
    Log,
    LogAction,
    LogEmpty,
    LogPar,
    LogTerm,
    Unknown,
    format_log,
    log_actions,
    log_free_variables,
    log_par,
    log_size,
)
from repro.logs.denotation import FreshVariables, canonical_denotation, denote
from repro.logs.order import (
    LogIndex,
    freshen_log,
    information_equivalent,
    log_leq,
)

__all__ = [name for name in dir() if not name.startswith("_")]
