"""Denotation of provenance as logs (Definition 2).

The provenance ``κ`` of an annotated value ``V : κ`` is interpreted as a
set of assertions about the past of ``V``, encoded as a log::

    ⟦V : ε⟧       =  ∅
    ⟦V : a!κ'; κ⟧ =  a.snd(x, V); ( ⟦V : κ⟧ | ⟦x : κ'⟧ )
    ⟦V : a?κ'; κ⟧ =  a.rcv(x, V); ( ⟦V : κ⟧ | ⟦x : κ'⟧ )

where each ``x`` is fresh: the provenance does not reveal the identity of
the channel used, so the denotation asserts only that *some* channel ``x``
was used, and that ``x``'s own past satisfies ``⟦x : κ'⟧``.  The two
branches of the composition are temporally independent — provenance does
not order the channel's history against the value's earlier history.

The denotation is deliberately *partial* information; the correctness
criterion (Definition 3) asks that it be ⪯-below the global log, and the
incompleteness result (Proposition 3) shows the converse fails.
"""

from __future__ import annotations

from itertools import count
from typing import Iterator

from repro.core.names import Variable
from repro.core.provenance import Event, InputEvent, OutputEvent, Provenance
from repro.logs.ast import (
    Action,
    ActionKind,
    EMPTY_LOG,
    Log,
    LogAction,
    LogTerm,
    log_par,
)

__all__ = ["denote", "canonical_denotation", "FreshVariables"]


class FreshVariables:
    """A supply of fresh log variables ``_x0, _x1, …``.

    Denotation variables live in their own namespace (underscore-prefixed)
    so they can never collide with variables originating in process terms.
    """

    def __init__(self, prefix: str = "_x") -> None:
        self._prefix = prefix
        self._counter = count()

    def fresh(self) -> Variable:
        return Variable(f"{self._prefix}{next(self._counter)}")


def denote(
    value: LogTerm,
    provenance: Provenance,
    fresh: FreshVariables | None = None,
) -> Log:
    """Compute ``⟦value : provenance⟧``.

    ``value`` may be any log term: plain values for ordinary data, ``?``
    for values whose plain part is a private (non-log-visible) channel,
    and variables during recursive calls.

    The spine is walked iteratively (Python recursion is spent on
    *nesting* depth only), so the denotation scales to the million-event
    spines the hash-consed representation makes cheap to build.  Note
    that shared provenance subtrees can NOT be denoted once and reused:
    Definition 2 introduces a fresh existential channel variable per
    event *occurrence*, so the log is genuinely tree-sized even when the
    provenance is a compact DAG — the denotation enumerates assertions,
    not structure.
    """

    if fresh is None:
        fresh = FreshVariables()
    return _denote(value, provenance, fresh)


def _denote(value: LogTerm, provenance: Provenance, fresh: FreshVariables) -> Log:
    # Fresh-variable order matches the historical recursive definition:
    # one variable per spine event front-to-back, then the nested channel
    # provenances denoted back-to-front while the log is folded up.
    spine: list[tuple[ActionKind, Event, Variable]] = []
    for event in provenance:
        if isinstance(event, OutputEvent):
            kind = ActionKind.SND
        elif isinstance(event, InputEvent):
            kind = ActionKind.RCV
        else:
            raise TypeError(f"not an event: {event!r}")
        spine.append((kind, event, fresh.fresh()))
    log: Log = EMPTY_LOG
    for kind, event, channel_variable in reversed(spine):
        action = Action(kind, event.principal, (channel_variable, value))
        if event.channel_provenance:
            nested = _denote(channel_variable, event.channel_provenance, fresh)
            log = LogAction(action, log_par(log, nested))
        else:
            # ⟦x : ε⟧ = ∅ — the empty branch composes away (the common
            # case: plain data channels), keeping denotations chains.
            log = LogAction(action, log)
    return log


def canonical_denotation(value: LogTerm, provenance: Provenance) -> Log:
    """``⟦value : provenance⟧`` from a private fresh supply.

    A deterministic function of the pair alone: two calls on the same
    (interned) provenance build structurally identical logs, so the
    denotation can be cached per pair and compared across checkers.  The
    result is shadow-free with all binders in the ``_x…`` namespace,
    which :meth:`repro.logs.order.LogIndex.leq` accepts un-refreshened
    (``assume_fresh=True``) — the index's own binders live under ``_r…``.
    """

    return denote(value, provenance, FreshVariables())


def denote_all(
    pairs: Iterator[tuple[LogTerm, Provenance]],
    fresh: FreshVariables | None = None,
) -> Iterator[Log]:
    """Denote a stream of annotated values, sharing one fresh supply."""

    if fresh is None:
        fresh = FreshVariables()
    for value, provenance in pairs:
        yield denote(value, provenance, fresh)
