"""Denotation of provenance as logs (Definition 2).

The provenance ``κ`` of an annotated value ``V : κ`` is interpreted as a
set of assertions about the past of ``V``, encoded as a log::

    ⟦V : ε⟧       =  ∅
    ⟦V : a!κ'; κ⟧ =  a.snd(x, V); ( ⟦V : κ⟧ | ⟦x : κ'⟧ )
    ⟦V : a?κ'; κ⟧ =  a.rcv(x, V); ( ⟦V : κ⟧ | ⟦x : κ'⟧ )

where each ``x`` is fresh: the provenance does not reveal the identity of
the channel used, so the denotation asserts only that *some* channel ``x``
was used, and that ``x``'s own past satisfies ``⟦x : κ'⟧``.  The two
branches of the composition are temporally independent — provenance does
not order the channel's history against the value's earlier history.

The denotation is deliberately *partial* information; the correctness
criterion (Definition 3) asks that it be ⪯-below the global log, and the
incompleteness result (Proposition 3) shows the converse fails.
"""

from __future__ import annotations

from itertools import count
from typing import Iterator

from repro.core.names import Variable
from repro.core.provenance import Event, InputEvent, OutputEvent, Provenance
from repro.logs.ast import (
    Action,
    ActionKind,
    EMPTY_LOG,
    Log,
    LogAction,
    LogTerm,
    log_par,
)

__all__ = ["denote", "FreshVariables"]


class FreshVariables:
    """A supply of fresh log variables ``_x0, _x1, …``.

    Denotation variables live in their own namespace (underscore-prefixed)
    so they can never collide with variables originating in process terms.
    """

    def __init__(self, prefix: str = "_x") -> None:
        self._prefix = prefix
        self._counter = count()

    def fresh(self) -> Variable:
        return Variable(f"{self._prefix}{next(self._counter)}")


def denote(
    value: LogTerm,
    provenance: Provenance,
    fresh: FreshVariables | None = None,
) -> Log:
    """Compute ``⟦value : provenance⟧``.

    ``value`` may be any log term: plain values for ordinary data, ``?``
    for values whose plain part is a private (non-log-visible) channel,
    and variables during recursive calls.
    """

    if fresh is None:
        fresh = FreshVariables()
    return _denote(value, tuple(provenance.events), fresh)


def _denote(value: LogTerm, events: tuple[Event, ...], fresh: FreshVariables) -> Log:
    if not events:
        return EMPTY_LOG
    head, rest = events[0], events[1:]
    channel_variable = fresh.fresh()
    if isinstance(head, OutputEvent):
        kind = ActionKind.SND
    elif isinstance(head, InputEvent):
        kind = ActionKind.RCV
    else:
        raise TypeError(f"not an event: {head!r}")
    action = Action(kind, head.principal, (channel_variable, value))
    remainder = log_par(
        _denote(value, rest, fresh),
        _denote(channel_variable, tuple(head.channel_provenance.events), fresh),
    )
    return LogAction(action, remainder)


def denote_all(
    pairs: Iterator[tuple[LogTerm, Provenance]],
    fresh: FreshVariables | None = None,
) -> Iterator[Log]:
    """Denote a stream of annotated values, sharing one fresh supply."""

    if fresh is None:
        fresh = FreshVariables()
    for value, provenance in pairs:
        yield denote(value, provenance, fresh)
