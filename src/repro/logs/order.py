"""The information order ``⪯`` on logs (§3.1) and its decision procedure.

``φ ⪯ ψ`` reads "ψ tells us at least as much about the past as φ".  The
relation is the least one closed under:

* **LEQ-Nil**    ``∅ ⪯ φ``
* **LEQ-Pre1**   ``α; φ ⪯ α'; ψ``   if ``α ⋖ α'`` (``α' = ασ`` for some
  substitution of values for variables) and ``φσ ⪯ ψσ'``
* **LEQ-Pre2**   ``φ ⪯ α; ψ``       if ``φ ⪯ ψ`` (extra actions on the
  right only add information)
* **LEQ-Comp1**  ``φ | φ' ⪯ ψ``     if ``φ ⪯ ψ`` and ``φ' ⪯ ψ``
  (nonlinear: both halves may reference the same recorded actions, because
  the calculus copies values together with their provenance)
* **LEQ-Comp2**  ``φ ⪯ ψ | ψ'``     if ``φ ⪯ ψ``

Decision procedure
------------------

A backtracking tree-embedding search.  Both logs are alpha-freshened into
disjoint variable namespaces; variables are then treated *existentially*
(a variable stands for some unknown value — binding it during the search
chooses that value), and ``?`` (unknown private channel) unifies with
anything without binding.  An action-prefixed left log scans the right
tree through LEQ-Pre2 skips and LEQ-Comp2 branch choices; left
compositions decompose by LEQ-Comp1 with the substitution environment
threaded through the children (they may share variables bound higher up).

The relation is a partial order on the quotient of logs by mutual ``⪯``
(Proposition 1): reflexivity and transitivity are checked by property
tests; antisymmetry holds by construction on the quotient (note that, e.g.,
``α | α`` and ``α`` are mutually related — the nonlinear LEQ-Comp1 makes
duplicates informationless — so antisymmetry cannot hold syntactically).
"""

from __future__ import annotations

from itertools import count
from typing import Iterator, Mapping

from repro.core.names import Variable
from repro.logs.ast import (
    Action,
    Log,
    LogAction,
    LogEmpty,
    LogPar,
    LogTerm,
    Unknown,
)

__all__ = ["log_leq", "information_equivalent", "freshen_log"]

Env = dict[Variable, LogTerm]


def log_leq(left: Log, right: Log) -> bool:
    """Decide ``left ⪯ right`` (closed logs)."""

    left = freshen_log(left, "_l")
    right = freshen_log(right, "_r")
    for _ in _search(left, right, {}, frozenset()):
        return True
    return False


def information_equivalent(left: Log, right: Log) -> bool:
    """Mutual ``⪯`` — the equivalence whose quotient ``⪯`` orders."""

    return log_leq(left, right) and log_leq(right, left)


# ---------------------------------------------------------------------------
# Alpha-freshening
# ---------------------------------------------------------------------------


def freshen_log(log: Log, prefix: str) -> Log:
    """Rename every bound variable to a fresh ``{prefix}{i}`` name.

    Guarantees (a) no binder shadows another and (b) two logs freshened
    with different prefixes share no variables — the invariants the search
    relies on.  Free variables (absent from closed logs) are left alone.
    """

    counter = count()

    def rename_term(term: LogTerm, env: Mapping[Variable, Variable]) -> LogTerm:
        if isinstance(term, Variable):
            return env.get(term, term)
        return term

    def walk(node: Log, env: dict[Variable, Variable]) -> Log:
        if isinstance(node, LogEmpty):
            return node
        if isinstance(node, LogPar):
            return LogPar(tuple(walk(child, env) for child in node.children))
        if isinstance(node, LogAction):
            action = node.action
            binder = action.binding_variable
            child_env = env
            operands = list(action.operands)
            if binder is not None:
                fresh = Variable(f"{prefix}{next(counter)}")
                child_env = dict(env)
                child_env[binder] = fresh
                operands[0] = fresh
                operands[1:] = [
                    rename_term(term, env) for term in operands[1:]
                ]
            else:
                operands = [rename_term(term, env) for term in operands]
            renamed = Action(action.kind, action.principal, tuple(operands))
            return LogAction(renamed, walk(node.child, child_env))
        raise TypeError(f"not a log: {node!r}")

    return walk(log, {})


# ---------------------------------------------------------------------------
# Backtracking search
# ---------------------------------------------------------------------------


def _resolve(term: LogTerm, env: Env) -> LogTerm:
    while isinstance(term, Variable) and term in env:
        term = env[term]
    return term


# ``closable`` is the set of *right-side* variables whose binder has been
# passed on the descent: the closing substitution σ' may instantiate them.
# A right variable at its own binding occurrence is NOT closable — the
# head-matching condition α' = ασ is syntactic on the right, so a ground
# left operand can never match a right binder (ψ would be claiming less
# information than φ there).
Closable = frozenset


def _unify_terms(
    left: LogTerm, right: LogTerm, env: Env, closable: Closable
) -> Env | None:
    left = _resolve(left, env)
    right = _resolve(right, env)
    if isinstance(left, Unknown) or isinstance(right, Unknown):
        # ``?`` asserts only "some private channel": it constrains nothing.
        return env
    if isinstance(left, Variable):
        if left is right or left == right:
            return env
        # σ instantiates left variables (to values, or — up to alpha — to
        # the right binder itself).
        extended = dict(env)
        extended[left] = right
        return extended
    if isinstance(right, Variable):
        if right not in closable:
            return None
        extended = dict(env)
        extended[right] = left
        return extended
    if left == right:
        return env
    return None


def _unify_actions(
    left: Action, right: Action, env: Env, closable: Closable
) -> Env | None:
    if left.kind is not right.kind:
        return None
    if left.principal != right.principal:
        return None
    if len(left.operands) != len(right.operands):
        return None
    for left_term, right_term in zip(left.operands, right.operands):
        result = _unify_terms(left_term, right_term, env, closable)
        if result is None:
            return None
        env = result
    return env


def _search(
    left: Log, right: Log, env: Env, closable: Closable
) -> Iterator[Env]:
    """Yield every environment under which ``left ⪯ right`` derives."""

    if isinstance(left, LogEmpty):
        # LEQ-Nil
        yield env
        return
    if isinstance(left, LogPar):
        # LEQ-Comp1, n-ary: thread the environment through all children.
        yield from _search_all(left.children, right, env, closable)
        return
    if isinstance(left, LogAction):
        yield from _scan_right(left, right, env, closable)
        return
    raise TypeError(f"not a log: {left!r}")


def _search_all(
    children: tuple[Log, ...], right: Log, env: Env, closable: Closable
) -> Iterator[Env]:
    if not children:
        yield env
        return
    head, rest = children[0], children[1:]
    for next_env in _search(head, right, env, closable):
        yield from _search_all(rest, right, next_env, closable)


def _scan_right(
    left: LogAction, right: Log, env: Env, closable: Closable
) -> Iterator[Env]:
    """Find the head action of ``left`` somewhere down the right tree."""

    if isinstance(right, LogEmpty):
        return
    if isinstance(right, LogPar):
        # LEQ-Comp2: commit to one branch for this left log.
        for child in right.children:
            yield from _scan_right(left, child, env, closable)
        return
    if isinstance(right, LogAction):
        binder = right.action.binding_variable
        freed = closable if binder is None else closable | {binder}
        # LEQ-Pre1: match here (the right binder is closable only *below*
        # this action, i.e. for the remainders)…
        matched = _unify_actions(left.action, right.action, env, closable)
        if matched is not None:
            yield from _search(left.child, right.child, matched, freed)
        # … or LEQ-Pre2: skip the right action and look deeper (its binder
        # is freed for the subtree, closed by σ').
        yield from _scan_right(left, right.child, env, freed)
        return
    raise TypeError(f"not a log: {right!r}")
