"""The information order ``⪯`` on logs (§3.1) and its decision procedure.

``φ ⪯ ψ`` reads "ψ tells us at least as much about the past as φ".  The
relation is the least one closed under:

* **LEQ-Nil**    ``∅ ⪯ φ``
* **LEQ-Pre1**   ``α; φ ⪯ α'; ψ``   if ``α ⋖ α'`` (``α' = ασ`` for some
  substitution of values for variables) and ``φσ ⪯ ψσ'``
* **LEQ-Pre2**   ``φ ⪯ α; ψ``       if ``φ ⪯ ψ`` (extra actions on the
  right only add information)
* **LEQ-Comp1**  ``φ | φ' ⪯ ψ``     if ``φ ⪯ ψ`` and ``φ' ⪯ ψ``
  (nonlinear: both halves may reference the same recorded actions, because
  the calculus copies values together with their provenance)
* **LEQ-Comp2**  ``φ ⪯ ψ | ψ'``     if ``φ ⪯ ψ``

Decision procedure
------------------

An *indexed* backtracking tree-embedding search built around
:class:`LogIndex`.  The right log is alpha-freshened once and every action
position is indexed by its ``(kind, principal, arity)`` signature together
with interval (pre/post-order) labels, so a left action finds its match
candidates by one bucket bisect instead of scanning the right tree node by
node.  Variables are treated *existentially* (a variable stands for some
unknown value — binding it during the search chooses that value), and
``?`` (unknown private channel) unifies with anything without binding.
A right-side binder may be instantiated by the closing substitution σ'
only strictly *below* its binding action; because every candidate match
descends from the previous match, that set is exactly the binders of the
candidate's proper ancestors — an O(1) interval-containment test, which is
what lets the skip/branch moves (LEQ-Pre2/LEQ-Comp2) collapse into direct
candidate jumps without losing derivations.

Everything is **iterative** — freshening, indexing, and the search itself
run on explicit stacks.  The global log of a monitored run is a cons chain
one action deep per reduction; the historical recursive procedure hit
Python's recursion limit a few hundred actions in.

The index is **reusable and extensible**: :meth:`LogIndex.try_extend`
re-points an index at a log that grew by prepended actions (the only way
a global log ever grows) in O(new actions), sharing the already-indexed
suffix by object identity.  The online monitor
(:mod:`repro.monitor.online`) keeps one index alive across a whole run.

The relation is a partial order on the quotient of logs by mutual ``⪯``
(Proposition 1): reflexivity and transitivity are checked by property
tests; antisymmetry holds by construction on the quotient (note that, e.g.,
``α | α`` and ``α`` are mutually related — the nonlinear LEQ-Comp1 makes
duplicates informationless — so antisymmetry cannot hold syntactically).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import count
from typing import Iterator, Optional

from repro.core.names import Variable
from repro.logs.ast import (
    Action,
    Log,
    LogAction,
    LogEmpty,
    LogPar,
    LogTerm,
    Unknown,
    chain_prefix,
    log_actions,
)

__all__ = ["LogIndex", "log_leq", "information_equivalent", "freshen_log"]

Env = dict[Variable, LogTerm]


def log_leq(left: Log, right: Log) -> bool:
    """Decide ``left ⪯ right`` (closed logs)."""

    return LogIndex(right).leq(left)


def information_equivalent(left: Log, right: Log) -> bool:
    """Mutual ``⪯`` — the equivalence whose quotient ``⪯`` orders."""

    return log_leq(left, right) and log_leq(right, left)


# ---------------------------------------------------------------------------
# Alpha-freshening
# ---------------------------------------------------------------------------


def _freshen_action(
    action: Action,
    env: dict[Variable, Variable],
    prefix: str,
    counter,
) -> tuple[Action, dict[Variable, Variable], Variable | None]:
    """Rename one action under ``env``.

    Returns the renamed action, the environment for the log below it, and
    the renamed binder (saving callers the ``binding_variable`` re-walk).
    """

    binder = action.binding_variable
    operands = list(action.operands)
    child_env = env
    fresh = None
    if binder is not None:
        fresh = Variable(f"{prefix}{next(counter)}")
        child_env = dict(env)
        child_env[binder] = fresh
        operands[0] = fresh
        operands[1:] = [
            env.get(term, term) if isinstance(term, Variable) else term
            for term in operands[1:]
        ]
    else:
        operands = [
            env.get(term, term) if isinstance(term, Variable) else term
            for term in operands
        ]
    renamed = Action(action.kind, action.principal, tuple(operands))
    return renamed, child_env, fresh


def freshen_log(log: Log, prefix: str) -> Log:
    """Rename every bound variable to a fresh ``{prefix}{i}`` name.

    Guarantees (a) no binder shadows another and (b) two logs freshened
    with different prefixes share no variables — the invariants the search
    relies on.  Free variables (absent from closed logs) are left alone.
    Iterative: rebuilds the tree bottom-up on an explicit stack, so
    arbitrarily deep action chains freshen without recursion.
    """

    counter = count()
    ENTER, EXIT_ACTION, EXIT_PAR = 0, 1, 2
    work: list[tuple[int, object, object]] = [(ENTER, log, {})]
    results: list[Log] = []
    while work:
        phase, node, env = work.pop()
        if phase == ENTER:
            if isinstance(node, LogEmpty):
                results.append(node)
            elif isinstance(node, LogPar):
                work.append((EXIT_PAR, len(node.children), None))
                for child in reversed(node.children):
                    work.append((ENTER, child, env))
            elif isinstance(node, LogAction):
                renamed, child_env, _ = _freshen_action(
                    node.action, env, prefix, counter
                )
                work.append((EXIT_ACTION, renamed, None))
                work.append((ENTER, node.child, child_env))
            else:
                raise TypeError(f"not a log: {node!r}")
        elif phase == EXIT_ACTION:
            child = results.pop()
            results.append(LogAction(node, child))
        else:  # EXIT_PAR; node is the child count
            width = node
            children = tuple(results[len(results) - width :])
            del results[len(results) - width :]
            results.append(LogPar(children))
    return results[0]


# ---------------------------------------------------------------------------
# The right-log index
# ---------------------------------------------------------------------------


class _Pos:
    """One position of the freshened right log.

    ``in_``/``out_`` are interval labels (assigned at tree enter/exit):
    position ``q`` lies in the subtree of ``p`` iff
    ``p.in_ <= q.in_`` and ``q.out_ <= p.out_`` — and because intervals
    nest properly, membership of ``q.in_`` in ``[p.in_, p.out_]`` alone
    decides it, which is what the bucket bisect exploits.  Action
    positions carry their freshened action, their child position (the
    scan root for the LEQ-Pre1 remainder) and their binder.
    """

    __slots__ = ("in_", "out_", "action", "child", "binder")

    def __init__(
        self,
        in_: int,
        out_: int | None = None,
        action: Action | None = None,
        child: "Optional[_Pos]" = None,
        binder: Variable | None = None,
    ) -> None:
        self.in_ = in_
        self.out_ = out_
        self.action = action
        self.child = child
        self.binder = binder


_Sig = tuple


class LogIndex:
    """A reusable decision index for ``· ⪯ φ`` queries against one ``φ``.

    Construction freshens and indexes ``φ`` once — O(φ).  Each
    :meth:`leq` query then walks only signature-matching candidate
    positions.  :meth:`try_extend` grows the index in place when the log
    grows by prepended actions (suffix shared by identity), the shape of
    every global-log update; anything else reports ``False`` and the
    caller builds a fresh index.
    """

    __slots__ = (
        "_source",
        "_counter",
        "_root",
        "_buckets",
        "_binders",
        "_variables",
        "_front",
        "_back",
        "_action_count",
    )

    def __init__(self, log: Log) -> None:
        self._source = log
        self._counter = count()
        # sig → (build-side ins, build-side positions, prefix-side keys
        # (-in_), prefix-side positions); both sides sorted, append-only.
        self._buckets: dict[
            _Sig, tuple[list[int], list[_Pos], list[int], list[_Pos]]
        ] = {}
        self._binders: dict[Variable, _Pos] = {}
        # Every variable occurring in the indexed log — needed only to
        # validate extensions (a new binder whose variable appears
        # anywhere in the frozen suffix could capture or shadow, so such
        # extensions rebuild instead), hence computed lazily: one-shot
        # queries never pay for it.
        self._variables: set[Variable] | None = None
        self._action_count = 0
        clock = count()
        self._root = self._index_subtree(log, clock)
        self._front = self._root.in_
        self._back = self._root.out_

    @property
    def source(self) -> Log:
        """The (unfreshened) log this index currently decides against."""

        return self._source

    @property
    def action_count(self) -> int:
        """Number of indexed action positions (grows under extension)."""

        return self._action_count

    def signature_buckets(self) -> dict[_Sig, int]:
        """Public histogram of the index: signature → position count.

        The signature is ``(action kind, principal, arity)``; the count
        sums both bucket sides (build-time positions and prefix
        extensions).  This is the selectivity oracle the query planner
        reads (:mod:`repro.query.planner`): a principal's total logged
        activity bounds how many deliveries can carry its actions,
        without exposing the mutable position lists themselves.
        """

        return {
            sig: len(bucket[0]) + len(bucket[2])
            for sig, bucket in self._buckets.items()
        }

    # -- construction -------------------------------------------------------

    def _suffix_variables(self) -> set[Variable]:
        if self._variables is None:
            self._variables = {
                term
                for action in log_actions(self._source)
                for term in action.operands
                if isinstance(term, Variable)
            }
        return self._variables

    def _register(self, pos: _Pos, prefix: bool = False) -> None:
        """File an action position in its signature bucket.

        A bucket is two sorted parallel-list pairs: the build-time side
        (ascending ``in_`` — DFS preorder appends in order) and the
        prefix side holding extension positions keyed by ``-in_``
        (extensions assign strictly decreasing ``in_``, innermost first,
        so these are appends too).  Both sides grow O(1) amortized —
        the documented O(new actions) extension depends on it.
        """

        action = pos.action
        sig = (action.kind, action.principal, len(action.operands))
        bucket = self._buckets.get(sig)
        if bucket is None:
            bucket = ([], [], [], [])
            self._buckets[sig] = bucket
        if prefix:
            bucket[2].append(-pos.in_)
            bucket[3].append(pos)
        else:
            bucket[0].append(pos.in_)
            bucket[1].append(pos)
        if pos.binder is not None:
            self._binders[pos.binder] = pos
        self._action_count += 1

    def _index_subtree(self, log: Log, clock) -> _Pos:
        """Freshen and label ``log``; returns its root position."""

        ENTER, EXIT_ACTION, EXIT_PAR = 0, 1, 2
        work: list[tuple[int, object, object]] = [(ENTER, log, {})]
        results: list[_Pos] = []
        while work:
            phase, node, env = work.pop()
            if phase == ENTER:
                if isinstance(node, LogEmpty):
                    results.append(_Pos(next(clock), next(clock)))
                elif isinstance(node, LogPar):
                    pos = _Pos(next(clock))
                    work.append((EXIT_PAR, (pos, len(node.children)), None))
                    for child in reversed(node.children):
                        work.append((ENTER, child, env))
                elif isinstance(node, LogAction):
                    renamed, child_env, binder = _freshen_action(
                        node.action, env, "_r", self._counter
                    )
                    pos = _Pos(next(clock), action=renamed, binder=binder)
                    # Register at enter time: preorder keeps every bucket
                    # sorted by ``in_`` with plain appends.
                    self._register(pos)
                    work.append((EXIT_ACTION, pos, None))
                    work.append((ENTER, node.child, child_env))
                else:
                    raise TypeError(f"not a log: {node!r}")
            elif phase == EXIT_ACTION:
                node.child = results.pop()
                node.out_ = next(clock)
                results.append(node)
            else:  # EXIT_PAR
                pos, width = node
                del results[len(results) - width :]
                pos.out_ = next(clock)
                results.append(pos)
        return results[0]

    def try_extend(self, log: Log) -> bool:
        """Re-point the index at ``log`` if it merely prepends actions.

        Walks the new spine down to the currently indexed log (matched by
        object *identity* — the suffix sharing the monitored semantics
        guarantees, since every ``→m`` step conses onto the previous
        log), then indexes just the new prefix: O(new actions).  Returns
        ``False`` — leaving the index untouched — when ``log`` is not
        such an extension, or when a new binder's variable occurs
        anywhere in the suffix (capture or shadowing would change how
        the suffix freshens; impossible for ground global logs).
        """

        spine = chain_prefix(log, self._source)
        if spine is None:
            return False
        if not spine:
            return True

        suffix_variables = self._suffix_variables()
        renamed: list[tuple[Action, Variable | None]] = []
        new_variables: set[Variable] = set()
        env: dict[Variable, Variable] = {}
        for wrapper in spine:
            action = wrapper.action
            binder = action.binding_variable
            if binder is not None and binder in suffix_variables:
                # The binder's variable occurs somewhere in the frozen
                # suffix — binding it could capture a free occurrence or
                # shadow a suffix binder, either of which changes how
                # the suffix would have been freshened.  Conservative:
                # the caller rebuilds.
                return False
            for term in action.operands:
                if isinstance(term, Variable):
                    new_variables.add(term)
            fresh, env, fresh_binder = _freshen_action(
                action, env, "_r", self._counter
            )
            renamed.append((fresh, fresh_binder))

        depth = len(spine)
        child = self._root
        for offset in range(depth - 1, -1, -1):
            distance = depth - offset
            action, binder = renamed[offset]
            pos = _Pos(
                self._front - distance,
                self._back + distance,
                action=action,
                child=child,
                binder=binder,
            )
            self._register(pos, prefix=True)
            child = pos
        self._root = child
        self._front -= depth
        self._back += depth
        suffix_variables |= new_variables
        self._source = log
        return True

    # -- queries ------------------------------------------------------------

    def _candidates(self, action: Action, root: _Pos) -> Iterator[_Pos]:
        """Signature-matching action positions inside ``root``'s subtree,
        in document (most-recent-first) order.

        Prefix-side positions (negative ``in_``, stored by ``-in_``) are
        ancestors of every build-side one, so the in-range prefix slice
        — walked newest-first — precedes the build-side slice.
        """

        bucket = self._buckets.get(
            (action.kind, action.principal, len(action.operands))
        )
        if bucket is None:
            return
        ins, positions, prefix_keys, prefix_positions = bucket
        if prefix_keys:
            low = bisect_left(prefix_keys, -root.out_)
            high = bisect_right(prefix_keys, -root.in_, low)
            for at in range(high - 1, low - 1, -1):
                yield prefix_positions[at]
        low = bisect_left(ins, root.in_)
        high = bisect_right(ins, root.out_, low)
        for at in range(low, high):
            yield positions[at]

    def _is_closable(self, variable: Variable, at: _Pos) -> bool:
        """May σ' instantiate ``variable`` when matching at ``at``?

        Exactly when its binding action is a proper ancestor of the match
        position: the binder was passed (matched or skipped) on the way
        down, never at its own binding occurrence.
        """

        binding = self._binders.get(variable)
        return (
            binding is not None
            and binding.in_ < at.in_
            and binding.out_ > at.out_
        )

    def leq(self, left: Log, *, assume_fresh: bool = False) -> bool:
        """Decide ``left ⪯ φ`` for the indexed ``φ``.

        ``assume_fresh=True`` skips the alpha-freshening of ``left`` —
        sound only when ``left`` already has pairwise-distinct binders
        disjoint from the index's ``_r…`` namespace (denotations built by
        :func:`repro.logs.denotation.canonical_denotation` qualify; the
        online checker relies on this to reuse cached denotations).
        """

        if not assume_fresh:
            left = freshen_log(left, "_l")
        goals = _expand(left, self._root, None)
        if goals is None:
            return True
        stack: list[Iterator] = [_matches(self, goals, {})]
        while stack:
            step = next(stack[-1], None)
            if step is None:
                stack.pop()
                continue
            goals, env = step
            if goals is None:
                return True
            stack.append(_matches(self, goals, env))
        return False


# ---------------------------------------------------------------------------
# The backtracking search
# ---------------------------------------------------------------------------
#
# A goal ``(left_action_node, right_position, rest)`` is the obligation to
# embed the left chain headed at that action somewhere in the subtree of
# the right position; ``rest`` links the remaining obligations (LEQ-Comp1
# children share the substitution environment, so they form one sequential
# list).  LEQ-Nil discharges empty left logs during expansion; LEQ-Pre2
# skips and LEQ-Comp2 branch choices are implicit in candidate selection.

_Goals = Optional[tuple]


def _expand(left: Log, pos: _Pos, rest: _Goals) -> _Goals:
    """Flatten Empty/Par left structure into a goal list (LEQ-Nil/Comp1)."""

    pending: list[tuple[Log, _Pos]] = [(left, pos)]
    heads: list[tuple[LogAction, _Pos]] = []
    while pending:
        node, at = pending.pop()
        if isinstance(node, LogEmpty):
            continue
        if isinstance(node, LogAction):
            heads.append((node, at))
        elif isinstance(node, LogPar):
            for child in reversed(node.children):
                pending.append((child, at))
        else:
            raise TypeError(f"not a log: {node!r}")
    goals = rest
    for node, at in reversed(heads):
        goals = (node, at, goals)
    return goals


def _matches(index: LogIndex, goals: tuple, env: Env) -> Iterator[tuple]:
    """Alternatives for the head goal — one per unifiable candidate
    (LEQ-Pre1 at each signature-matching position under the scan root)."""

    left, root, rest = goals
    action = left.action
    child = left.child
    # Chain-shaped remainders (the overwhelming case: global logs and
    # empty-nesting denotations) skip the generic goal expansion.
    if isinstance(child, LogAction):
        for candidate in index._candidates(action, root):
            extended = _unify_actions(
                action, candidate.action, env, index, candidate
            )
            if extended is not None:
                yield (child, candidate.child, rest), extended
        return
    if isinstance(child, LogEmpty):
        for candidate in index._candidates(action, root):
            extended = _unify_actions(
                action, candidate.action, env, index, candidate
            )
            if extended is not None:
                yield rest, extended
        return
    for candidate in index._candidates(action, root):
        extended = _unify_actions(action, candidate.action, env, index, candidate)
        if extended is not None:
            yield _expand(child, candidate.child, rest), extended


def _resolve(term: LogTerm, env: Env) -> LogTerm:
    while isinstance(term, Variable) and term in env:
        term = env[term]
    return term


def _unify_terms(
    left: LogTerm, right: LogTerm, env: Env, index: LogIndex, at: _Pos
) -> Env | None:
    if left == right:
        # Ground-on-ground equality is the overwhelmingly common case
        # (every operand of a monitored global log is concrete); it also
        # covers identical variables and ``? ⋖ ?``, all of which resolve
        # to "no constraint added" below anyway.
        return env
    left = _resolve(left, env)
    right = _resolve(right, env)
    if isinstance(left, Unknown) or isinstance(right, Unknown):
        # ``?`` asserts only "some private channel": it constrains nothing.
        return env
    if isinstance(left, Variable):
        if left is right or left == right:
            return env
        # σ instantiates left variables (to values, or — up to alpha — to
        # the right binder itself).
        extended = dict(env)
        extended[left] = right
        return extended
    if isinstance(right, Variable):
        # σ' closes a right binder only strictly below its binding action
        # — the head-matching condition α' = ασ is syntactic on the
        # right, so a ground left operand can never match a right binder
        # at its own occurrence (ψ would be claiming less information
        # than φ there).
        if not index._is_closable(right, at):
            return None
        extended = dict(env)
        extended[right] = left
        return extended
    if left == right:
        return env
    return None


def _unify_actions(
    left: Action, right: Action, env: Env, index: LogIndex, at: _Pos
) -> Env | None:
    if left.kind is not right.kind:
        return None
    if left.principal != right.principal:
        return None
    if len(left.operands) != len(right.operands):
        return None
    for left_term, right_term in zip(left.operands, right.operands):
        result = _unify_terms(left_term, right_term, env, index, at)
        if result is None:
            return None
        env = result
    return env
