"""Monitored systems, global logs and the provenance meta-theory (§3.3–3.5)."""

from repro.monitor.checker import (
    CheckReport,
    ValueCheck,
    check_completeness,
    check_correctness,
    component_values,
    has_complete_provenance,
    has_correct_provenance,
    monitored_values,
)
from repro.monitor.monitored import (
    MonitoredEngine,
    MonitoredStep,
    MonitoredSystem,
    MonitoredTrace,
    action_of_label,
    actions_of_label,
    erase,
    monitored_steps,
)
from repro.monitor.online import OnlineChecker, OnlineRunReport, run_checked

__all__ = [name for name in dir() if not name.startswith("_")]
