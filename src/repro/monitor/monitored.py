"""Monitored systems: the global-log semantics of Table 4.

A monitored system ``M = φ ▷ S`` pairs a system with a *global log* that
records every action as it happens.  The log is a proof artefact: no
principal can read it, it exists so that correctness and completeness of
provenance can be stated against a ground-truth record (§3.3).

Representation.  The paper's syntax allows restrictions outside the log
(``(νn)M``) so that channel scopes can extrude over it; those extruded
names appear *by name* in the log, while channels restricted inside ``S``
(still guarded, hence never yet used) do not.  Our reduction engine hoists
every active restriction to the top level of the system — structurally
congruent, by the ``≡m`` laws, to hoisting them over the log — so a
:class:`MonitoredSystem` is simply a log plus a system, and log actions
always record the actual (hoisted, renamed-apart) channel names.

Reduction ``→m`` (rules MR-Send, MR-Recv, MR-IFt, MR-IFf) performs exactly
the untracked reduction and additionally prepends the corresponding action
to the log; :func:`erase` forgets the log.  Proposition 2 — the two
semantics simulate each other through erasure — is checked property-style
in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.engine import RunStatus, Strategy, FirstStrategy
from repro.core.semantics import (
    MatchLabel,
    ReceiveLabel,
    ReductionStep,
    SemanticsMode,
    SendLabel,
    StepLabel,
    enumerate_steps,
)
from repro.core.system import System
from repro.logs.ast import Action, ActionKind, EMPTY_LOG, Log, LogAction

__all__ = [
    "MonitoredSystem",
    "MonitoredStep",
    "monitored_steps",
    "MonitoredTrace",
    "MonitoredEngine",
    "action_of_label",
    "erase",
]


@dataclass(frozen=True, slots=True)
class MonitoredSystem:
    """``φ ▷ S`` — a system observed by a global log."""

    log: Log
    system: System

    @staticmethod
    def start(system: System) -> "MonitoredSystem":
        """Begin monitoring with the empty log ``∅ ▷ S``."""

        return MonitoredSystem(EMPTY_LOG, system)

    def __str__(self) -> str:
        return f"{self.log} |> {self.system}"


@dataclass(frozen=True, slots=True)
class MonitoredStep:
    """One ``→m`` reduction: its recorded actions, label and target."""

    actions: tuple[Action, ...]
    label: StepLabel
    target: MonitoredSystem

    @property
    def action(self) -> Action:
        """The most recent of the recorded actions (convenience)."""

        return self.actions[0]


def actions_of_label(label: StepLabel) -> tuple[Action, ...]:
    """The global-log actions recorded for a reduction label.

    The paper's log actions are monadic — ``a.snd(V, V')`` speaks about
    one transmitted value.  A *polyadic* communication is therefore
    recorded as an atomic batch of monadic actions, one per payload
    component (their relative order inside the batch carries no
    information); the monadic case is a singleton batch, exactly MR-Send /
    MR-Recv.  An empty-payload send still records the bare channel use.
    MR-IFt/MR-IFf record ``a.ift(u, v)`` / ``a.iff(u, v)``.  Operands are
    the *plain* values — the log sees through annotations.
    """

    if isinstance(label, SendLabel):
        kind = ActionKind.SND
    elif isinstance(label, ReceiveLabel):
        kind = ActionKind.RCV
    elif isinstance(label, MatchLabel):
        match_kind = ActionKind.IFT if label.result else ActionKind.IFF
        return (Action(match_kind, label.principal, (label.left, label.right)),)
    else:
        raise TypeError(f"not a reduction label: {label!r}")
    if not label.values:
        return (Action(kind, label.principal, (label.channel,)),)
    return tuple(
        Action(kind, label.principal, (label.channel, value))
        for value in label.values
    )


def action_of_label(label: StepLabel) -> Action:
    """The first recorded action of a label (monadic convenience)."""

    return actions_of_label(label)[0]


def monitored_steps(
    monitored: MonitoredSystem,
    mode: SemanticsMode = SemanticsMode.TRACKED,
) -> list[MonitoredStep]:
    """All ``→m`` reductions of a monitored system.

    Each is an untracked reduction of the system part, with the matching
    actions prepended to the global log (the new actions become the root
    of the log tree: they are the most recent things that happened).
    """

    steps: list[MonitoredStep] = []
    for step in enumerate_steps(monitored.system, mode):
        actions = actions_of_label(step.label)
        log = monitored.log
        for action in reversed(actions):
            log = LogAction(action, log)
        target = MonitoredSystem(log, step.target)
        steps.append(MonitoredStep(actions, step.label, target))
    return steps


def erase(monitored: MonitoredSystem) -> System:
    """The log-erasure ``|M|`` (the paper's erasure function)."""

    return monitored.system


@dataclass(frozen=True, slots=True)
class MonitoredTrace:
    """A monitored run: initial state, fired steps, final status."""

    initial: MonitoredSystem
    entries: tuple[MonitoredStep, ...]
    status: RunStatus

    @property
    def final(self) -> MonitoredSystem:
        if self.entries:
            return self.entries[-1].target
        return self.initial

    def states(self) -> Iterator[MonitoredSystem]:
        """The initial state followed by every intermediate state."""

        yield self.initial
        for entry in self.entries:
            yield entry.target

    def __len__(self) -> int:
        return len(self.entries)


StateObserver = Callable[[MonitoredSystem, "Sequence[System] | None"], None]
"""Per-state hook of :meth:`MonitoredEngine.run`.

Called with the initial state and with every state a fired step produces.
On the incremental path the second argument is the state's normal-form
components straight from the reducer (no re-normalization needed — this
is what the online monitor feeds on); on the from-scratch path it is
``None`` and the observer derives what it needs from the state itself.
"""


class MonitoredEngine:
    """Multi-step ``→m`` reduction under a strategy (cf. core ``Engine``).

    Like the core :class:`~repro.core.engine.Engine`, the run loop drives
    one of two trace-identical paths: the **incremental** default hands
    the system part to a :class:`~repro.core.incremental.IncrementalReducer`
    (persistent normal form, O(affected) redex maintenance — monitored
    runs no longer re-enumerate redexes from scratch at every step) and
    conses the recorded actions onto the global log as steps fire;
    ``incremental=False`` keeps the stateless from-scratch enumeration
    via :func:`monitored_steps` as the A/B reference.
    """

    def __init__(
        self,
        mode: SemanticsMode = SemanticsMode.TRACKED,
        strategy: Strategy | None = None,
        max_steps: int = 10_000,
        incremental: bool = True,
    ) -> None:
        self.mode = mode
        self.strategy = strategy or FirstStrategy()
        self.max_steps = max_steps
        self.incremental = incremental

    def run(
        self,
        monitored: MonitoredSystem,
        max_steps: int | None = None,
        state_observer: StateObserver | None = None,
    ) -> MonitoredTrace:
        budget = self.max_steps if max_steps is None else max_steps
        if self.incremental:
            return self._run_incremental(monitored, budget, state_observer)
        return self._run_from_scratch(monitored, budget, state_observer)

    def _run_incremental(
        self,
        monitored: MonitoredSystem,
        budget: int,
        state_observer: StateObserver | None,
    ) -> MonitoredTrace:
        from repro.core.incremental import IncrementalReducer

        reducer = IncrementalReducer(monitored.system, self.mode)
        if state_observer is not None:
            state_observer(monitored, reducer.components())
        log = monitored.log
        entries: list[MonitoredStep] = []
        for step_number in range(budget):
            pending = reducer.redexes()
            if pending.is_empty():
                return MonitoredTrace(
                    monitored, tuple(entries), RunStatus.QUIESCENT
                )
            chosen = pending[self.strategy.choose(pending, step_number)]
            fired = reducer.fire(chosen)
            actions = actions_of_label(fired.label)
            for action in reversed(actions):
                log = LogAction(action, log)
            target = MonitoredSystem(log, fired.target)
            entries.append(MonitoredStep(actions, fired.label, target))
            if state_observer is not None:
                state_observer(target, reducer.components())
        return MonitoredTrace(monitored, tuple(entries), RunStatus.MAX_STEPS)

    def _run_from_scratch(
        self,
        monitored: MonitoredSystem,
        budget: int,
        state_observer: StateObserver | None,
    ) -> MonitoredTrace:
        if state_observer is not None:
            state_observer(monitored, None)
        entries: list[MonitoredStep] = []
        current = monitored
        for step_number in range(budget):
            steps = monitored_steps(current, self.mode)
            if not steps:
                return MonitoredTrace(monitored, tuple(entries), RunStatus.QUIESCENT)
            chosen = steps[self.strategy.choose(
                [ReductionStep(s.label, s.target.system) for s in steps],
                step_number,
            )]
            entries.append(chosen)
            current = chosen.target
            if state_observer is not None:
                state_observer(current, None)
        return MonitoredTrace(monitored, tuple(entries), RunStatus.MAX_STEPS)
