"""Online monitoring: incremental correctness/completeness checking.

Theorem 1 makes ``⟦V : κ⟧ ⪯ log(M)`` the invariant a monitor must decide
at *every* state of a ``→m`` run — and a batch :func:`check_correctness`
at every state restates everything from scratch: it re-normalizes the
system, re-collects ``values(M)``, re-denotes every provenance and re-runs
every ``⪯`` search, even though a step changes at most two components and
only ever *prepends* to the global log.  :class:`OnlineChecker` is the
incremental version.  Three observations make it sound:

* **⪯ is monotone under log growth** (LEQ-Pre2 plus transitivity): once
  ``⟦V : κ⟧ ⪯ φ`` holds it holds for every extension ``α; φ`` — so a
  *positive* correctness verdict, cached under the value's
  interned-provenance identity (O(1) per PR 2), never needs re-checking
  while the same log lineage keeps growing.  Only new values and previous
  failures are re-searched.
* **Completeness is the mirror image** (the Proposition 3 caveat): a run
  that keeps reducing keeps *adding* facts the provenance of an untouched
  value cannot mention, so ``log(M) ⪯ ⟦V : κ⟧`` can flip from true to
  false as the log grows — positive verdicts are unstable and must be
  re-checked each step.  What *is* stable is failure: ``φ ⪯̸ δ`` implies
  ``α; φ ⪯̸ δ`` (``φ ⪯ α; φ`` would otherwise contradict transitivity),
  so in completeness mode the checker caches *negative* verdicts instead.
* **The state only changes where the step fired**: fed from the
  incremental reducer's persistent normal form, value collection reuses
  per-component caches — identity-stable for every component a step did
  not touch — instead of a full ``normalize`` + ``monitored_values``
  re-traversal.

The global log is indexed once by a :class:`~repro.logs.order.LogIndex`
and extended in O(new actions) per step; denotations are canonical per
``(value, provenance)`` pair and cached, entering the search pre-
freshened.  If a caller hands states from an unrelated log lineage (the
new log is not an extension of the last one seen), the verdict caches are
invalidated wholesale — correctness over arbitrary state sequences,
incrementality only along genuine runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.congruence import normal_form_of
from repro.core.system import System
from repro.logs.ast import Log, chain_prefix
from repro.logs.denotation import canonical_denotation
from repro.logs.order import LogIndex, freshen_log
from repro.monitor.checker import CheckReport, ValueCheck, component_values
from repro.monitor.monitored import (
    MonitoredEngine,
    MonitoredSystem,
    MonitoredTrace,
)

__all__ = ["OnlineChecker", "OnlineRunReport", "run_checked"]

CORRECTNESS = "correctness"
COMPLETENESS = "completeness"


class OnlineChecker:
    """Incrementally re-decides Definition 3 (or 4) along a monitored run.

    Call :meth:`check` on successive states of a run; each call returns a
    :class:`CheckReport` equal — verdicts, order, denotations — to what
    the batch checker would produce for that state, at the cost of only
    the step's delta.  A fresh instance is stateless-equivalent to the
    batch checker on any single state.
    """

    def __init__(self, definition: str = CORRECTNESS) -> None:
        if definition not in (CORRECTNESS, COMPLETENESS):
            raise ValueError(
                f"definition must be {CORRECTNESS!r} or {COMPLETENESS!r}, "
                f"got {definition!r}"
            )
        self.definition = definition
        self._log_index: LogIndex | None = None
        self._last_log: Log | None = None
        # Monotone verdicts, cached as finished ValueChecks: holds=True
        # keys for correctness (LEQ-Pre2 stability), holds=False keys for
        # completeness (its dual).
        self._settled_checks: dict[tuple, ValueCheck] = {}
        self._denotations: dict[tuple, Log] = {}
        self._denotation_indexes: dict[tuple, LogIndex] = {}
        # id(component) → [component, pairs, settled ValueChecks|None,
        # generation] — the per-component collection *and* finished checks
        # survive for every component a step leaves untouched.
        self._components: dict[int, list] = {}
        self._generation = 0
        self.leq_queries = 0
        """⪯ searches actually performed (cache misses) — the
        deterministic work measure the E11 gate reports alongside wall
        clock: the batch checker performs one per value per state."""

    def reset(self) -> None:
        """Forget everything (new run, new lineage)."""

        self._log_index = None
        self._last_log = None
        self._settled_checks.clear()
        self._denotations.clear()
        self._denotation_indexes.clear()
        self._components.clear()
        self._generation += 1

    # -- value collection ---------------------------------------------------

    def _component_entries(
        self,
        monitored: MonitoredSystem,
        components: Sequence[System] | None,
    ) -> Iterator[list]:
        """Per-component cache entries, in component order.

        Collection is cached per component *object*: fed from the
        incremental engine, a step invalidates only the entries of the
        components it consumed or produced.  The cache holds strong
        references (so ``id`` cannot be recycled under it) and is pruned
        to the live component set every call.
        """

        if components is None:
            components = normal_form_of(monitored.system).components
        previous = self._components
        current: dict[int, list] = {}
        for component in components:
            key = id(component)
            entry = previous.get(key)
            if entry is None or entry[0] is not component:
                entry = [component, tuple(component_values(component)), None, -1]
            current[key] = entry
            yield entry
        self._components = current

    # -- checking -----------------------------------------------------------

    def check(
        self,
        monitored: MonitoredSystem,
        components: Sequence[System] | None = None,
    ) -> CheckReport:
        """The state's full report, computed from the run's delta.

        ``components`` — the state's normal-form components if the caller
        already has them (:class:`MonitoredEngine` hands them to its
        ``state_observer`` on the incremental path); otherwise they are
        recovered from the system, free of charge when it is already in
        normal form.
        """

        if self.definition == CORRECTNESS:
            return self._check_correctness(monitored, components)
        return self._check_completeness(monitored, components)

    def _denotation_of(self, key: tuple) -> Log:
        denotation = self._denotations.get(key)
        if denotation is None:
            denotation = canonical_denotation(*key)
            self._denotations[key] = denotation
        return denotation

    def _check_correctness(
        self,
        monitored: MonitoredSystem,
        components: Sequence[System] | None,
    ) -> CheckReport:
        index = self._log_index
        if index is None or not index.try_extend(monitored.log):
            index = LogIndex(monitored.log)
            self._log_index = index
            self._settled_checks.clear()  # new lineage: monotonicity void
            self._generation += 1

        def decide(pair: tuple) -> tuple[Log, bool]:
            denotation = self._denotation_of(pair)
            self.leq_queries += 1
            return denotation, index.leq(denotation, assume_fresh=True)

        # Positive verdicts are the stable ones (LEQ-Pre2).
        return self._run_checks(monitored, components, decide, settle_on=True)

    def _check_completeness(
        self,
        monitored: MonitoredSystem,
        components: Sequence[System] | None,
    ) -> CheckReport:
        log = monitored.log
        if self._last_log is None or chain_prefix(log, self._last_log) is None:
            self._settled_checks.clear()
            self._generation += 1
        self._last_log = log
        # The left side of every query this state: freshened on first
        # use only — once all verdicts are settled-False no query runs,
        # and the O(log) freshening would dominate the fast path.
        fresh_log: Log | None = None

        def decide(pair: tuple) -> tuple[Log, bool]:
            nonlocal fresh_log
            denotation = self._denotation_of(pair)
            denotation_index = self._denotation_indexes.get(pair)
            if denotation_index is None:
                denotation_index = LogIndex(denotation)
                self._denotation_indexes[pair] = denotation_index
            if fresh_log is None:
                fresh_log = freshen_log(log, "_l")
            self.leq_queries += 1
            return denotation, denotation_index.leq(fresh_log, assume_fresh=True)

        # Refutations are the stable ones (the Proposition 3 dual).
        return self._run_checks(monitored, components, decide, settle_on=False)

    def _run_checks(
        self,
        monitored: MonitoredSystem,
        components: Sequence[System] | None,
        decide,
        settle_on: bool,
    ) -> CheckReport:
        """The shared caching protocol around one verdict per pair.

        ``decide(pair)`` performs the actual ⪯ query; a verdict equal to
        ``settle_on`` is monotone along the current lineage and is cached
        as a finished :class:`ValueCheck`, and a component whose pairs
        all settled reuses its whole check tuple until the lineage
        breaks (``self._generation`` moves).
        """

        settled_checks = self._settled_checks
        generation = self._generation
        checks: list[ValueCheck] = []
        for entry in self._component_entries(monitored, components):
            if entry[3] == generation:
                checks.extend(entry[2])
                continue
            group: list[ValueCheck] = []
            stable = True
            for pair in entry[1]:
                check = settled_checks.get(pair)
                if check is None:
                    denotation, holds = decide(pair)
                    check = ValueCheck(pair[0], pair[1], denotation, holds)
                    if holds == settle_on:
                        settled_checks[pair] = check
                    else:
                        stable = False  # unstable verdicts re-check next state
                group.append(check)
            if stable:
                entry[2] = tuple(group)
                entry[3] = generation
            checks.extend(group)
        return CheckReport(tuple(checks))


@dataclass(frozen=True, slots=True)
class OnlineRunReport:
    """A whole monitored run, checked at every state."""

    trace: MonitoredTrace
    reports: tuple[CheckReport, ...]
    """One report per state: the initial state, then one per fired step."""

    @property
    def holds(self) -> bool:
        """Did the checked definition hold at every state of the run?"""

        return all(report.holds for report in self.reports)

    @property
    def values_checked(self) -> int:
        """Total value checks across all states (batch-equivalent count)."""

        return sum(len(report) for report in self.reports)

    def first_failure(self) -> tuple[int, CheckReport] | None:
        """The earliest failing state's index and report, if any."""

        for state_number, report in enumerate(self.reports):
            if not report.holds:
                return state_number, report
        return None


def run_checked(
    monitored: MonitoredSystem,
    engine: MonitoredEngine | None = None,
    checker: OnlineChecker | None = None,
    max_steps: int | None = None,
) -> OnlineRunReport:
    """Run ``→m`` to quiescence, checking every state online.

    The whole-run equivalent of calling the batch checker on every state
    of a finished trace — same verdicts (property-tested), one order of
    magnitude cheaper (benchmark E11's online gate): the engine reduces
    incrementally, the checker extends its log index per step and
    re-decides ``⪯`` only for values the step changed.
    """

    engine = engine or MonitoredEngine()
    checker = checker or OnlineChecker()
    reports: list[CheckReport] = []

    def observe(state: MonitoredSystem, components) -> None:
        reports.append(checker.check(state, components))

    trace = engine.run(monitored, max_steps=max_steps, state_observer=observe)
    return OnlineRunReport(trace, tuple(reports))
