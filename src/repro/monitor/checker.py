"""Correctness and completeness of provenance (Definitions 3 and 4).

* ``values(M)`` — every annotated value occurring in the system part of
  ``M``, with ``?`` substituted for channels bound by *inner* (guarded)
  restrictions: those names are not visible to the global log, so the
  assertions we can state about them cannot name them.  Channels hoisted
  to the top level are log-visible and stay concrete.
* **correct provenance** — ``⟦V : κ⟧ ⪯ log(M)`` for every value: whatever
  a value's provenance asserts about the past really happened.  Theorem 1
  (preservation of correctness under ``→m``) is verified property-style
  over random systems in the test-suite, and its checking cost is the
  subject of benchmark E11.
* **complete provenance** — ``log(M) ⪯ ⟦V : κ⟧`` for every value: the
  provenance records *everything* that happened.  Proposition 3 shows this
  is not preserved by reduction; the checker exists to demonstrate the
  counterexample and to let tests probe exactly where completeness dies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.congruence import NormalForm, normal_form_of
from repro.core.names import Channel
from repro.core.process import (
    Inaction,
    InputSum,
    Match,
    Output,
    Parallel,
    Process,
    Replication,
    Restriction,
)
from repro.core.provenance import Provenance
from repro.core.system import Located, Message, System
from repro.core.values import AnnotatedValue, Identifier
from repro.logs.ast import Log, LogTerm, Unknown
from repro.logs.denotation import canonical_denotation
from repro.logs.order import log_leq
from repro.monitor.monitored import MonitoredSystem

__all__ = [
    "monitored_values",
    "component_values",
    "ValueCheck",
    "CheckReport",
    "check_correctness",
    "check_completeness",
    "has_correct_provenance",
    "has_complete_provenance",
]


def monitored_values(
    monitored: MonitoredSystem,
    nf: NormalForm | None = None,
) -> list[tuple[LogTerm, Provenance]]:
    """The paper's ``values(M)``: annotated values as log-term pairs.

    Restricted channels still guarded inside process bodies become ``?``;
    everything else keeps its concrete name.  The collection reaches under
    prefixes (values in continuations count) and includes channel-subject
    occurrences ``m : κm`` — the completeness counterexample depends on
    them.

    Pass an already-computed ``nf`` to skip normalization outright; with
    ``nf=None`` a system that is *already* in normal form — every state
    along an engine run is — is detected and used as-is, so only
    hand-built irregular systems pay for a re-normalization.
    """

    if nf is None:
        nf = normal_form_of(monitored.system)
    collected: list[tuple[LogTerm, Provenance]] = []
    for component in nf.components:
        collected.extend(component_values(component))
    return collected


def component_values(component: System) -> list[tuple[LogTerm, Provenance]]:
    """The annotated values contributed by one normal-form component.

    ``values(M)`` is the concatenation of these per component — the unit
    of reuse for the online monitor, which caches the collection per
    surviving component across steps (components are immutable; only the
    few a step replaces are re-collected).
    """

    collected: list[tuple[LogTerm, Provenance]] = []
    if isinstance(component, Message):
        for value in component.payload:
            collected.append(_term_of(value, frozenset()))
    elif isinstance(component, Located):
        _collect_process(component.process, frozenset(), collected)
    else:
        raise TypeError(f"not a normal-form component: {component!r}")
    return collected


def _term_of(
    value: AnnotatedValue, bound: frozenset[Channel]
) -> tuple[LogTerm, Provenance]:
    if isinstance(value.value, Channel) and value.value in bound:
        return Unknown(), value.provenance
    return value.value, value.provenance


def _collect_identifier(
    identifier: Identifier,
    bound: frozenset[Channel],
    collected: list[tuple[LogTerm, Provenance]],
) -> None:
    if isinstance(identifier, AnnotatedValue):
        collected.append(_term_of(identifier, bound))


def _collect_process(
    process: Process,
    bound: frozenset[Channel],
    collected: list[tuple[LogTerm, Provenance]],
) -> None:
    if isinstance(process, Output):
        _collect_identifier(process.channel, bound, collected)
        for w in process.payload:
            _collect_identifier(w, bound, collected)
    elif isinstance(process, InputSum):
        _collect_identifier(process.channel, bound, collected)
        for branch in process.branches:
            _collect_process(branch.continuation, bound, collected)
    elif isinstance(process, Match):
        _collect_identifier(process.left, bound, collected)
        _collect_identifier(process.right, bound, collected)
        _collect_process(process.then_branch, bound, collected)
        _collect_process(process.else_branch, bound, collected)
    elif isinstance(process, Restriction):
        _collect_process(process.body, bound | {process.channel}, collected)
    elif isinstance(process, Parallel):
        for part in process.parts:
            _collect_process(part, bound, collected)
    elif isinstance(process, Replication):
        _collect_process(process.body, bound, collected)
    elif isinstance(process, Inaction):
        return
    else:
        raise TypeError(f"not a process: {process!r}")


@dataclass(frozen=True, slots=True)
class ValueCheck:
    """The verdict for one annotated value."""

    value: LogTerm
    provenance: Provenance
    denotation: Log
    holds: bool

    def __str__(self) -> str:
        verdict = "ok" if self.holds else "FAIL"
        return f"[{verdict}] {self.value} : {self.provenance}"


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Outcome of checking every value of a monitored system."""

    checks: tuple[ValueCheck, ...]

    @property
    def holds(self) -> bool:
        return all(check.holds for check in self.checks)

    @property
    def failures(self) -> tuple[ValueCheck, ...]:
        return tuple(check for check in self.checks if not check.holds)

    def __len__(self) -> int:
        return len(self.checks)

    def __iter__(self) -> Iterator[ValueCheck]:
        return iter(self.checks)


def check_correctness(monitored: MonitoredSystem) -> CheckReport:
    """Definition 3: ``⟦V : κ⟧ ⪯ log(M)`` for every value of ``M``."""

    checks = []
    for value, provenance in monitored_values(monitored):
        denotation = canonical_denotation(value, provenance)
        holds = log_leq(denotation, monitored.log)
        checks.append(ValueCheck(value, provenance, denotation, holds))
    return CheckReport(tuple(checks))


def check_completeness(monitored: MonitoredSystem) -> CheckReport:
    """Definition 4: ``log(M) ⪯ ⟦V : κ⟧`` for every value of ``M``."""

    checks = []
    for value, provenance in monitored_values(monitored):
        denotation = canonical_denotation(value, provenance)
        holds = log_leq(monitored.log, denotation)
        checks.append(ValueCheck(value, provenance, denotation, holds))
    return CheckReport(tuple(checks))


def has_correct_provenance(monitored: MonitoredSystem) -> bool:
    """Convenience wrapper for Definition 3."""

    return check_correctness(monitored).holds


def has_complete_provenance(monitored: MonitoredSystem) -> bool:
    """Convenience wrapper for Definition 4."""

    return check_completeness(monitored).holds
