"""Command-line interface: run, explore, check and analyse systems.

Usage (``python -m repro <command> …``; reads the system from a file, or
stdin when the path is ``-``)::

    python -m repro run system.pi --max-steps 200 --strategy progress
    python -m repro explore system.pi --max-states 5000
    python -m repro check system.pi          # monitored run + Theorem 1
    python -m repro check system.pi --online # every state, incrementally
    python -m repro sim system.pi            # simulated cluster + metrics
    python -m repro sim system.pi --vetting nfa  # A/B the vetting path
    python -m repro analyse system.pi        # static flow verdicts
    python -m repro lint system.pi           # static policy gate (+--json)
    python -m repro fmt system.pi            # parse and pretty-print
    python -m repro query store/ --taint a   # provenance queries over a
                                             # durable store's record

The input syntax is the concrete syntax of `repro.lang` (see README);
``--principal NAME`` declares data-only principals the pre-scan cannot
infer.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.analysis.static_flow import analyse_flow
from repro.core.engine import (
    Engine,
    FirstStrategy,
    ProgressStrategy,
    RandomStrategy,
)
from repro.core.explore import explore
from repro.core.semantics import SemanticsMode
from repro.lang import parse_system, pretty_system
from repro.monitor import MonitoredSystem, OnlineChecker, check_correctness
from repro.monitor.monitored import MonitoredEngine

__all__ = ["main", "build_parser"]


def _read_system(args) -> "System":  # noqa: F821 - doc only
    if args.path == "-":
        source = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            source = handle.read()
    return parse_system(source, principals=set(args.principal))


def _print_timings(**phases: float) -> None:
    rendered = " ".join(
        f"{name}={seconds * 1000:.1f}ms" for name, seconds in phases.items()
    )
    print(f"timings: {rendered}")


def _write_stats_json(path: str, payload: dict) -> None:
    """Dump a metrics summary (or merged+per-shard bundle) as JSON."""

    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"stats written to {path}")


def _strategy(name: str, seed: int):
    if name == "first":
        return FirstStrategy()
    if name == "progress":
        return ProgressStrategy()
    return RandomStrategy(seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="the provenance calculus, on the command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("path", help="system file ('-' for stdin)")
        p.add_argument(
            "--principal",
            action="append",
            default=[],
            help="declare a data-only principal name (repeatable)",
        )

    run_p = sub.add_parser("run", help="reduce a system and show the trace")
    common(run_p)
    run_p.add_argument("--max-steps", type=int, default=1000)
    run_p.add_argument(
        "--strategy", choices=["first", "progress", "random"], default="first"
    )
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--erased", action="store_true",
        help="use the plain asynchronous-pi baseline semantics",
    )

    explore_p = sub.add_parser("explore", help="exhaustive state space")
    common(explore_p)
    explore_p.add_argument("--max-states", type=int, default=10_000)

    check_p = sub.add_parser(
        "check", help="monitored run + correctness/completeness verdicts"
    )
    common(check_p)
    check_p.add_argument("--max-steps", type=int, default=1000)
    check_p.add_argument(
        "--online",
        action="store_true",
        help="check every state of the run with the incremental online "
        "monitor (default: batch-check only the final state)",
    )

    sim_p = sub.add_parser(
        "sim", help="deploy on the simulated distributed runtime"
    )
    common(sim_p)
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument("--max-events", type=int, default=1_000_000)
    sim_p.add_argument(
        "--vetting",
        choices=["bank", "nfa"],
        default="bank",
        help="incremental lazy-DFA policy bank (default) or the "
        "per-message NFA re-simulation reference",
    )
    sim_p.add_argument(
        "--erased", action="store_true",
        help="run the untracked baseline semantics",
    )
    sim_p.add_argument(
        "--scheduler",
        choices=["runq", "heap"],
        default="runq",
        help="two-tier run-queue scheduler (default) or the seed's "
        "single-heap reference; each is deterministic per seed, and "
        "race-free systems run identically under both",
    )
    sim_p.add_argument(
        "--metrics-retention",
        type=int,
        default=None,
        metavar="N",
        help="cap per-delivery metric series at the last N entries "
        "(aggregates are streamed either way; default keeps everything)",
    )
    sim_p.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition principals over N shards (default 1: the "
        "plain single-simulator runtime)",
    )
    sim_p.add_argument(
        "--shard-mode",
        choices=["inline", "process"],
        default="inline",
        help="inline (default): all shards in-process, conductor-"
        "driven, bit-identical to --shards 1 for any system; process: "
        "one OS process per shard under a conservative window barrier "
        "(receivers must be co-located with their channels' homes)",
    )
    sim_p.add_argument(
        "--lookahead",
        type=float,
        default=None,
        metavar="T",
        help="lower bound on cross-shard link latency (process mode "
        "barrier width; defaults to the base latency)",
    )
    sim_p.add_argument(
        "--adversary",
        choices=[
            "collude",
            "forge",
            "garble",
            "mix",
            "replay",
            "splice",
            "truncate",
        ],
        default=None,
        metavar="MIX",
        help="after the run, drive the named attack mix against the "
        "middleware and report detection (forge, replay, truncate, "
        "splice, collude, garble, or mix for all)",
    )
    sim_p.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="SPEC",
        help="inject link faults, e.g. 'drop=0.01,dup=0.02,corrupt=0.005'"
        " (keys: drop, dup, reorder, corrupt, delay; seeded, "
        "deterministic per link)",
    )
    sim_p.add_argument(
        "--verify-deliveries",
        action="store_true",
        help="cryptographically re-verify every payload's provenance "
        "chain at its rendezvous (paranoid integrity mode)",
    )
    sim_p.add_argument(
        "--durable",
        type=str,
        default=None,
        metavar="DIR",
        help="journal deliveries and attestations to a crash-"
        "recoverable segment store at DIR (per shard-N subdirectory "
        "when sharded); see 'repro recover'",
    )
    sim_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="with --durable: compact the journal into an atomic "
        "checkpoint every N events (N barrier windows when sharded)",
    )
    sim_p.add_argument(
        "--stats-json",
        type=str,
        default=None,
        metavar="PATH",
        help="also dump the metrics summary as JSON to PATH "
        "(sharded runs include the merged summary and every "
        "per-shard summary)",
    )

    recover_p = sub.add_parser(
        "recover",
        help="load a durable store, report its record, and verify it "
        "replays bit-identically",
        description="Load a durable store, report its record, and "
        "verify the record replays bit-identically from the manifest. "
        "Exit status: 0 = record loads and replay verification passed "
        "(or was skipped); 1 = replay verification FAILED — the "
        "diagnostic names the first divergent generation; 2 = the "
        "store is missing, unreadable, or has no manifest.",
    )
    recover_p.add_argument("dir", help="store directory from --durable")
    recover_p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the deterministic replay differential (just report "
        "what the store holds)",
    )
    recover_p.add_argument("--max-events", type=int, default=10_000_000)

    query_p = sub.add_parser(
        "query",
        help="where/why provenance queries over a durable store's record",
        description="Build (or resume, from the snapshot persisted at "
        "the last checkpoint) the provenance query index over a durable "
        "store's delivery record, and answer where/why queries against "
        "it.  With no query flags, prints the index summary.",
    )
    query_p.add_argument("dir", help="store directory from --durable")
    query_p.add_argument(
        "--derived-from",
        metavar="PRINCIPAL",
        default=None,
        help="deliveries whose payload provenance contains a send by "
        "PRINCIPAL (dataflow: 'where did this principal's data end up?')",
    )
    query_p.add_argument(
        "--taint",
        metavar="PRINCIPAL",
        default=None,
        help="forward closure over dataflow edges from every delivery "
        "PRINCIPAL touched ('what could this principal have influenced?')",
    )
    query_p.add_argument(
        "--cone",
        type=int,
        metavar="ORDINAL",
        default=None,
        help="cone of influence: every delivery the given one "
        "(transitively) happens-after",
    )
    query_p.add_argument(
        "--witness",
        metavar="PATTERN",
        default=None,
        help="minimal witness suffix satisfying PATTERN (concrete "
        "pattern syntax, e.g. '~!any;(~?any;~!any)*') on a delivered "
        "value's provenance (see --ordinal)",
    )
    query_p.add_argument(
        "--ordinal",
        type=int,
        default=None,
        metavar="N",
        help="delivery the --witness query inspects (default: the "
        "newest provenance-carrying delivery)",
    )
    query_p.add_argument(
        "--receiver",
        metavar="PRINCIPAL",
        default=None,
        help="planned where-query: deliveries received by PRINCIPAL "
        "(prints the chosen access path)",
    )
    query_p.add_argument(
        "--channel",
        metavar="NAME",
        default=None,
        help="planned where-query: deliveries on channel NAME "
        "(combines with --receiver)",
    )
    query_p.add_argument(
        "--export-prov",
        metavar="PATH",
        default=None,
        help="export the dataflow graph as W3C PROV-JSON to PATH",
    )
    query_p.add_argument(
        "--export-dot",
        metavar="PATH",
        default=None,
        help="export the happens-before graph as graphviz DOT to PATH",
    )
    query_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="cap exports at the first N deliveries",
    )

    analyse_p = sub.add_parser("analyse", help="static provenance-flow verdicts")
    common(analyse_p)
    analyse_p.add_argument("--depth", type=int, default=4, dest="k")

    lint_p = sub.add_parser(
        "lint",
        help="static policy gate: algebra lint + flow verdicts + certificate",
    )
    common(lint_p)
    lint_p.add_argument("--depth", type=int, default=4, dest="k")
    lint_p.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    lint_p.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as findings (nonzero exit)",
    )

    fmt_p = sub.add_parser("fmt", help="parse and pretty-print")
    common(fmt_p)

    return parser


def _print_recovered_state(state, indent: str = "") -> None:
    print(
        f"{indent}delivered={len(state.entries)} "
        f"notes={len(state.notes)} "
        f"checkpoint_generation={state.checkpoint_generation}"
    )
    print(f"{indent}trace_digest={state.trace_digest.hex()}")
    if state.quarantined:
        print(f"{indent}quarantined={sorted(state.quarantined)}")
    if state.revoked:
        print(f"{indent}certificate: revoked")
    if state.tampered:
        print(f"{indent}tamper_notes={state.tampered}")
    if state.torn:
        print(f"{indent}torn_segments={state.torn} (truncated to last valid record)")


def _cmd_recover(args) -> int:
    """Load a durable store, report its record, optionally verify replay.

    Exit status: 0 = clean (or verification skipped); 1 = replay
    verification failed — one-line diagnostic names the first divergent
    generation; 2 = store missing/unreadable/no manifest.
    """

    from repro.core.errors import StorageError
    from repro.storage import DurableStore, load_state, verify_replay

    store = DurableStore(args.dir)
    try:
        manifest = store.read_manifest()
        if manifest is None:
            print(f"error: no manifest in {args.dir}", file=sys.stderr)
            return 2
        if manifest.get("sharded"):
            shard_dirs = store.shard_dirs()
            print(
                f"sharded store: shards={manifest.get('shards')} "
                f"mode={manifest.get('shard_mode')} "
                f"seed={manifest.get('seed')}"
            )
            for shard_path in shard_dirs:
                shard_state = load_state(DurableStore(shard_path))
                print(f"  {shard_path.name}:")
                _print_recovered_state(shard_state, indent="    ")
            if not shard_dirs:
                print("  (no shard stores found)")
            return 0
        state = load_state(store)
        _print_recovered_state(state)
        if args.no_verify:
            return 0
        if manifest.get("system") is None:
            print("verify: skipped (manifest carries no system source)")
            return 0
        report = verify_replay(store, state, max_events=args.max_events)
        if report.ok:
            print(
                f"verify: ok — {report.persisted} persisted deliveries "
                f"replayed bit-identically ({report.replayed} replayed)"
            )
            return 0
        # one line, naming the first generation whose persisted
        # deliveries the replay contradicts — that segment (journal
        # generation or checkpoint) is where recovery should look
        where = ""
        if report.divergence_index is not None:
            generation = state.generation_of(report.divergence_index)
            if generation is not None:
                where = (
                    f" (first divergence in generation {generation}, "
                    f"delivery #{report.divergence_index})"
                )
            else:
                where = f" (first divergence at delivery #{report.divergence_index})"
        print(f"verify: FAILED{where} — {report.detail}", file=sys.stderr)
        return 1
    except StorageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _shard_merged_entries(store, load_state, DurableStore):
    """All shard stores' entries merged in canonical trace order.

    Same key as ``ShardedRuntime.delivered_trace()``: (time, channel
    name, per-channel ordinal) — each channel is homed on one shard, so
    per-shard order totals its deliveries and the merge is independent
    of the partitioning.
    """

    keyed = []
    for shard_path in store.shard_dirs():
        ordinals = {}
        for entry in load_state(DurableStore(shard_path)).entries:
            ordinal = ordinals.get(entry.channel, 0)
            ordinals[entry.channel] = ordinal + 1
            keyed.append((entry.time, entry.channel.name, ordinal, entry))
    keyed.sort(key=lambda item: item[:3])
    return [entry for _, _, _, entry in keyed]


def _cmd_query(args) -> int:
    """Answer where/why queries over a durable store's record."""

    from repro.core.errors import StorageError
    from repro.core.names import Principal
    from repro.query import resume_index, to_dot, write_prov_json
    from repro.storage import DurableStore, load_state

    store = DurableStore(args.dir)
    try:
        manifest = store.read_manifest()
        if manifest is None:
            print(f"error: no manifest in {args.dir}", file=sys.stderr)
            return 2
        if manifest.get("sharded"):
            # per-shard records merge canonically; no per-shard snapshot
            # exists, so the index is built fresh over the merged record
            from repro.query import ProvenanceIndex

            index = ProvenanceIndex()
            index.extend_entries(
                _shard_merged_entries(store, load_state, DurableStore)
            )
            info = {"snapshot_generation": None}
        else:
            index, info = resume_index(store)
        summary = index.summary()
        resumed = info.get("resumed_deliveries", 0)
        if info.get("snapshot_generation"):
            print(
                f"index: resumed snapshot generation "
                f"{info['snapshot_generation']} "
                f"({resumed} deliveries reloaded, "
                f"{info.get('extended_deliveries', 0)} indexed fresh)"
            )
        else:
            print(f"index: built fresh ({summary['delivered']} deliveries)")
        print(
            "deliveries={delivered} spine_nodes={spine_nodes} "
            "hb_edges={hb_edges} generations={generation}".format(**summary)
        )
        print(
            "edges: "
            + " ".join(
                f"{kind}={count}"
                for kind, count in summary["edge_counts"].items()
            )
        )

        def show(title, ordinals):
            print(f"{title}: {len(ordinals)} deliver(y/ies)")
            for ordinal in ordinals:
                delivery = index.delivery(ordinal)
                print(
                    f"  #{ordinal} t={delivery.time:.2f} "
                    f"{delivery.principal.name}?{delivery.channel.name}"
                )

        if args.derived_from is not None:
            show(
                f"derived from sends by {args.derived_from}",
                index.derived_from_sends(Principal(args.derived_from)),
            )
        if args.taint is not None:
            show(
                f"tainted by {args.taint}",
                index.taint(Principal(args.taint)),
            )
        if args.cone is not None:
            if not 0 <= args.cone < summary["delivered"]:
                print(
                    f"error: --cone {args.cone} out of range "
                    f"(0..{summary['delivered'] - 1})",
                    file=sys.stderr,
                )
                return 2
            show(
                f"cone of influence of #{args.cone}",
                index.cone_of_influence(args.cone),
            )
        if args.receiver is not None or args.channel is not None:
            from repro.core.names import Channel
            from repro.query import run_where

            ordinals, plan = run_where(
                index,
                receiver=(
                    Principal(args.receiver) if args.receiver else None
                ),
                channel=Channel(args.channel) if args.channel else None,
            )
            print(f"plan: {plan.describe()}")
            show("where", ordinals)
        if args.witness is not None:
            from repro.patterns.parse import parse_pattern

            pattern = parse_pattern(args.witness)
            target = _witness_target(index, args.ordinal)
            if target is None:
                print(
                    "error: no provenance-carrying delivery to inspect",
                    file=sys.stderr,
                )
                return 2
            ordinal, provenance = target
            witness = index.minimal_witness(provenance, pattern)
            matches = index.matching_suffixes(provenance, pattern)
            if witness is None:
                print(
                    f"witness: no suffix of delivery #{ordinal}'s "
                    f"provenance satisfies the pattern"
                )
            else:
                print(
                    f"witness: delivery #{ordinal}, minimal suffix of "
                    f"{len(witness)} event(s) "
                    f"({len(matches)}/{len(provenance) + 1} "
                    f"suffixes match)"
                )
        if args.export_prov is not None:
            write_prov_json(index, args.export_prov, limit=args.limit)
            print(f"wrote PROV-JSON to {args.export_prov}")
        if args.export_dot is not None:
            with open(args.export_dot, "w", encoding="utf-8") as handle:
                handle.write(to_dot(index, limit=args.limit))
            print(f"wrote DOT to {args.export_dot}")
        return 0
    except StorageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _witness_target(index, ordinal):
    """The (ordinal, provenance) the --witness query inspects."""

    candidates = (
        [ordinal]
        if ordinal is not None
        else range(index.delivered - 1, -1, -1)
    )
    for candidate in candidates:
        if not 0 <= candidate < index.delivered:
            return None
        for provenance in index.delivery(candidate).roots:
            if len(provenance):
                return candidate, provenance
        if ordinal is not None:
            return None
    return None


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "recover":
        # no system file to read — the store's manifest is the input
        return _cmd_recover(args)
    if args.command == "query":
        return _cmd_query(args)
    parse_start = perf_counter()
    try:
        system = _read_system(args)
    except Exception as error:  # surface parse errors cleanly
        print(f"error: {error}", file=sys.stderr)
        return 2
    parse_seconds = perf_counter() - parse_start

    if args.command == "fmt":
        print(pretty_system(system))
        return 0

    if args.command == "run":
        mode = SemanticsMode.ERASED if args.erased else SemanticsMode.TRACKED
        engine = Engine(
            mode=mode,
            strategy=_strategy(args.strategy, args.seed),
            max_steps=args.max_steps,
        )
        trace = engine.run(system)
        for index, entry in enumerate(trace):
            print(f"{index + 1:4d}. {entry.label}")
        print(f"-- {trace.status.value} after {len(trace)} steps")
        print(pretty_system(trace.final))
        return 0

    if args.command == "explore":
        lts = explore(system, max_states=args.max_states)
        terminals = lts.terminal_states()
        print(
            f"states={len(lts)} transitions={len(lts.transitions)} "
            f"terminal={len(terminals)} complete={lts.complete}"
        )
        for index in terminals:
            print(f"  terminal #{index}: {pretty_system(lts.states[index])}")
        return 0

    if args.command == "check":
        engine = MonitoredEngine(max_steps=args.max_steps)
        if args.online:
            checker = OnlineChecker()
            reports = []
            check_seconds = 0.0

            def observe(state, components):
                nonlocal check_seconds
                start = perf_counter()
                reports.append(checker.check(state, components))
                check_seconds += perf_counter() - start

            run_start = perf_counter()
            trace = engine.run(
                MonitoredSystem.start(system), state_observer=observe
            )
            reduce_seconds = perf_counter() - run_start - check_seconds
            holds = all(report.holds for report in reports)
            final = trace.final
            print(f"steps={len(trace)} log={final.log}")
            print(
                f"correct provenance: {holds} "
                f"({sum(len(r) for r in reports)} value checks over "
                f"{len(reports)} states, online)"
            )
            for state_number, report in enumerate(reports):
                if not report.holds:
                    for failure in report.failures:
                        print(f"  FAIL at state {state_number}: {failure}")
                    break
            _print_timings(
                parse=parse_seconds, reduce=reduce_seconds, check=check_seconds
            )
            return 0 if holds else 1
        run_start = perf_counter()
        trace = engine.run(MonitoredSystem.start(system))
        reduce_seconds = perf_counter() - run_start
        final = trace.final
        check_start = perf_counter()
        report = check_correctness(final)
        check_seconds = perf_counter() - check_start
        print(f"steps={len(trace)} log={final.log}")
        print(
            f"correct provenance: {report.holds} "
            f"({len(report)} values checked)"
        )
        for failure in report.failures:
            print(f"  FAIL {failure}")
        _print_timings(
            parse=parse_seconds, reduce=reduce_seconds, check=check_seconds
        )
        return 0 if report.holds else 1

    if args.command == "sim":
        from repro.runtime import DistributedRuntime, FaultPlan

        mode = SemanticsMode.ERASED if args.erased else SemanticsMode.TRACKED
        fault_plan = None
        if args.faults:
            try:
                fault_plan = FaultPlan.parse(args.faults)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        if args.shards > 1:
            from repro.runtime import ShardedRuntime

            if args.adversary:
                print(
                    "error: --adversary needs the single-runtime "
                    "middleware; use --shards 1",
                    file=sys.stderr,
                )
                return 2
            runtime = ShardedRuntime(
                shards=args.shards,
                shard_mode=args.shard_mode,
                seed=args.seed,
                lookahead=args.lookahead,
                mode=mode,
                vetting=args.vetting,
                scheduler=args.scheduler,
                metrics_retention=args.metrics_retention,
                verify_deliveries=args.verify_deliveries,
                fault_plan=fault_plan,
                durable_dir=args.durable,
                checkpoint_every=args.checkpoint_every,
            )
            from repro.core.errors import SimulationError

            deploy_start = perf_counter()
            try:
                runtime.deploy(system)
                events = runtime.run(max_events=args.max_events)
            except SimulationError as error:
                # process-mode placement/lookahead constraints
                print(f"error: {error}", file=sys.stderr)
                return 2
            run_seconds = perf_counter() - deploy_start
            summary = runtime.metrics_summary()
            if args.stats_json:
                _write_stats_json(
                    args.stats_json,
                    {
                        "merged": summary,
                        "shards": list(runtime.shard_summaries()),
                    },
                )
            print(
                f"events={events} time={runtime.now:.2f} "
                f"blocked={runtime.blocked_threads()} "
                f"shards={args.shards} mode={args.shard_mode}"
            )
            for key in (
                "messages_sent",
                "deliveries",
                "bytes_total",
                "bytes_provenance",
                "pattern_checks",
                "pattern_rejections",
            ):
                print(f"  {key} = {summary[key]}")
            if args.verify_deliveries or fault_plan is not None:
                for key in (
                    "verify_calls",
                    "verify_nodes_checked",
                    "tamper_detected",
                    "replays_blocked",
                    "faults_dropped",
                    "faults_duplicated",
                    "faults_reordered",
                    "faults_corrupted",
                ):
                    print(f"  {key} = {summary[key]}")
            for pattern_text, count in summary[
                "rejections_by_pattern"
            ].items():
                print(f"  rejected by {pattern_text}: {count}")
            for stat in runtime.shard_stats():
                print(
                    "  shard {shard}: events={events} "
                    "deliveries={deliveries} "
                    "cross_sent={cross_shard_sent} "
                    "cross_recv={cross_shard_received} "
                    "barrier_stall={barrier_stall_seconds:.3f}s".format(
                        **stat
                    )
                )
            _print_timings(parse=parse_seconds, simulate=run_seconds)
            return 0
        runtime = DistributedRuntime(
            seed=args.seed,
            mode=mode,
            vetting=args.vetting,
            scheduler=args.scheduler,
            metrics_retention=args.metrics_retention,
            verify_deliveries=args.verify_deliveries,
            fault_plan=fault_plan,
            durable=args.durable,
            checkpoint_every=args.checkpoint_every,
            durable_wipe=args.durable is not None,
        )
        if args.durable:
            # stream deliveries into a query index so each checkpoint
            # persists a snapshot `repro query` can resume in O(new)
            runtime.attach_query_index()
        deploy_start = perf_counter()
        runtime.deploy(system)
        events = runtime.run(max_events=args.max_events)
        run_seconds = perf_counter() - deploy_start
        if args.adversary:
            from repro.runtime import ATTACK_MIXES, run_threat_suite

            outcomes = run_threat_suite(
                runtime.middleware, attacks=ATTACK_MIXES[args.adversary]
            )
            runtime.run(max_events=args.max_events)  # drain accepted posts
            detected = sum(1 for o in outcomes if o.detected)
            print(f"adversary[{args.adversary}]: {len(outcomes)} attack(s)")
            for o in outcomes:
                verdict = (
                    "detected"
                    if o.detected
                    else ("ACCEPTED" if o.accepted else "blocked")
                )
                print(f"  {o.attack:10s} {verdict}")
            print(f"  detection: {detected}/{len(outcomes)}")
        if args.durable:
            # end the store on a complete, self-contained checkpoint so
            # `repro recover` needs no journal suffix for a clean exit
            runtime.checkpoint()
        summary = runtime.metrics.summary()
        if args.stats_json:
            _write_stats_json(args.stats_json, summary)
        print(
            f"events={events} time={runtime.now:.2f} "
            f"blocked={runtime.blocked_threads()}"
        )
        for key in (
            "messages_sent",
            "deliveries",
            "bytes_total",
            "bytes_provenance",
            "pattern_checks",
            "pattern_rejections",
            "vet_transitions",
            "vet_cache_hits",
        ):
            print(f"  {key} = {summary[key]}")
        if args.verify_deliveries or args.adversary or fault_plan is not None:
            for key in (
                "verify_calls",
                "verify_nodes_checked",
                "tamper_detected",
                "replays_blocked",
                "principals_quarantined",
                "faults_dropped",
                "faults_duplicated",
                "faults_reordered",
                "faults_corrupted",
            ):
                print(f"  {key} = {summary[key]}")
        for pattern_text, count in summary["rejections_by_pattern"].items():
            print(f"  rejected by {pattern_text}: {count}")
        stats = runtime.middleware.vetting_stats()
        print(
            f"vetting[{args.vetting}]: "
            + " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        )
        _print_timings(parse=parse_seconds, simulate=run_seconds)
        return 0

    if args.command == "analyse":
        report = analyse_flow(system, k=args.k)
        print(
            "sites={sites} redundant={redundant} dead={dead} "
            "needed={needed}".format(**report.summary())
        )
        for site in report.sites.values():
            print(f"  [{site.verdict.value:9s}] {site.key}")
        return 0

    if args.command == "lint":
        import json as _json

        from repro.analysis.lint import lint_system
        from repro.core.names import Principal
        from repro.core.system import system_principals

        universe = system_principals(system) | {
            Principal(name) for name in args.principal
        }
        lint_report = lint_system(system, principals=universe)
        flow_report = analyse_flow(system, k=args.k)
        certificate = flow_report.certificate()
        failed = bool(lint_report.errors) or (
            args.strict and bool(lint_report.warnings)
        )
        if args.json:
            payload = lint_report.to_json()
            payload["flow"] = {
                "summary": flow_report.summary(),
                "complete": flow_report.complete,
                "principals": flow_report.principal_summary(),
                "sites": {
                    str(site.key): site.verdict.value
                    for site in flow_report.sites.values()
                },
            }
            payload["certificate"] = certificate.to_json()
            payload["ok"] = not failed
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            for finding in lint_report.findings:
                print(
                    f"{finding.severity}: [{finding.code}] "
                    f"{finding.principal}@{finding.channel}"
                    f"#{finding.branch_index}: {finding.message}"
                )
            summary = flow_report.summary()
            print(
                f"lint: {len(lint_report.errors)} error(s), "
                f"{len(lint_report.warnings)} warning(s); "
                f"flow: {summary['redundant']} redundant, "
                f"{summary['dead']} dead, {summary['needed']} needed "
                f"across {summary['sites']} site(s)"
                + ("" if flow_report.complete else " (incomplete)")
            )
            if certificate.elidable_channels:
                print(
                    "certificate elides vetting on: "
                    + ", ".join(sorted(certificate.elidable_channels))
                )
        return 1 if failed else 0

    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
