"""Persist / reload a :class:`ProvenanceIndex` per checkpoint generation.

A snapshot deliberately does **not** re-serialize the delivered record —
the durable store already holds it (checkpoint + journal suffix), and
the interned spines decode straight back out of it.  What the snapshot
saves is the *derived* work the index spent building its graphs:

* the happens-before edge lists (pure ordinals);
* one row per distinct spine node — sender/receiver sets (as indices
  into a principal table, with shared frozensets stored once) and the
  derivation anchor ``latest_root``.

Node rows are aligned positionally with a deterministic walk over the
record's value roots (:func:`enumerate_nodes`): save and load run the
same walk over the same interned DAG, so row *k* is node *k* on both
sides without ever encoding a spine.  Loading is therefore O(DAG)
pointer-chasing plus row assignment — no DFA passes, no set unions —
and resuming after new deliveries costs only the journal suffix:
``repro recover`` / ``repro query`` pick up where the crashed run's
index left off instead of re-deriving the full history.

Snapshots live beside the checkpoints they mirror
(``queryindex-<gen>.seg``, CRC-framed); a corrupt or stale snapshot
falls back to the next older one, and ultimately to a fresh build —
the snapshot is an accelerator, never a source of truth.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.errors import StorageError
from repro.core.names import Principal
from repro.core.provenance import Provenance
from repro.query.index import (
    CHANNEL,
    DERIVES,
    HBEdge,
    IndexedDelivery,
    PROGRAM,
    ProvenanceIndex,
    _NodeInfo,
)
from repro.storage.checkpoint import RecordView, collect_entries
from repro.storage.segments import (
    DurableStore,
    atomic_write_bytes,
    frame_record,
    read_segment,
)

__all__ = [
    "enumerate_nodes",
    "load_index",
    "resume_index",
    "save_index",
]

SNAPSHOT_FORMAT = 1

K_QHEADER = 0x20
K_QEDGES = 0x21
K_QNODES = 0x22

_KIND_CODE = {PROGRAM: 0, CHANNEL: 1, DERIVES: 2}
_CODE_KIND = {code: kind for kind, code in _KIND_CODE.items()}


def enumerate_nodes(
    roots: Sequence[Provenance],
) -> List[Provenance]:
    """Every distinct non-empty spine node reachable from ``roots``.

    Deterministic order (delivery order, then a fixed DFS over spine
    tails and nested channel provenances) — the positional key that
    aligns snapshot rows between save and load.
    """

    seen = set()
    order: List[Provenance] = []
    for root in roots:
        stack = [root]
        while stack:
            node = stack.pop()
            if not len(node) or node in seen:
                continue
            seen.add(node)
            order.append(node)
            stack.append(node.tail)
            stack.append(node.head.channel_provenance)
    return order


def _record_roots(entries: Sequence) -> List[Provenance]:
    roots: List[Provenance] = []
    for entry in entries:
        for value in entry.values:
            roots.append(value.provenance)
    return roots


def save_index(
    store: Union[DurableStore, str, Path],
    index: ProvenanceIndex,
    generation: int,
) -> Path:
    """Write one snapshot of ``index`` keyed to checkpoint ``generation``.

    Pending observations are committed first — the snapshot always
    covers a whole number of generations.
    """

    if not isinstance(store, DurableStore):
        store = DurableStore(store)
    index.commit()
    principal_table: List[str] = []
    principal_ids: dict = {}
    set_table: List[List[int]] = []
    set_ids: dict = {}

    def principal_id(principal: Principal) -> int:
        got = principal_ids.get(principal)
        if got is None:
            got = len(principal_table)
            principal_ids[principal] = got
            principal_table.append(principal.name)
        return got

    def set_id(members: frozenset) -> int:
        got = set_ids.get(members)
        if got is None:
            got = len(set_table)
            set_ids[members] = got
            set_table.append(
                sorted(principal_id(member) for member in members)
            )
        return got

    roots = _record_roots(index._deliveries)
    rows: List[List[int]] = []
    for node in enumerate_nodes(roots):
        info = index._node_info[node]
        rows.append(
            [
                set_id(info.senders),
                set_id(info.receivers),
                -1 if info.latest_root is None else info.latest_root,
            ]
        )
    header = {
        "format": SNAPSHOT_FORMAT,
        "delivered": index.delivered,
        "generation": index.generation,
        "marks": list(index.generation_marks),
        "work": list(index.generation_work),
        "events_indexed": index.events_indexed,
        "principals": principal_table,
    }
    edges = [
        [[_KIND_CODE[kind], source] for kind, source in preds]
        for preds in index._hb_preds
    ]
    nodes = {"sets": set_table, "rows": rows}
    blob = b"".join(
        (
            frame_record(
                bytes((K_QHEADER,))
                + json.dumps(header, sort_keys=True).encode("utf-8")
            ),
            frame_record(
                bytes((K_QEDGES,)) + json.dumps(edges).encode("utf-8")
            ),
            frame_record(
                bytes((K_QNODES,)) + json.dumps(nodes).encode("utf-8")
            ),
        )
    )
    return atomic_write_bytes(store.query_index_path(generation), blob)


def _read_snapshot(path: Path) -> Tuple[dict, list, dict]:
    view = read_segment(path)
    if view.torn or len(view.records) != 3:
        raise StorageError(f"query-index snapshot {path} is malformed")
    parts = []
    for record, expected in zip(view.records, (K_QHEADER, K_QEDGES, K_QNODES)):
        if not record or record[0] != expected:
            raise StorageError(
                f"query-index snapshot {path} record kind mismatch"
            )
        try:
            parts.append(json.loads(record[1:].decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StorageError(
                f"query-index snapshot {path} is corrupt: {error}"
            ) from None
    header, edges, nodes = parts
    if header.get("format") != SNAPSHOT_FORMAT:
        raise StorageError(
            f"query-index snapshot {path} has unknown format "
            f"{header.get('format')!r}"
        )
    return header, edges, nodes


def _rebuild(
    header: dict, edges: list, nodes: dict, entries: Sequence
) -> ProvenanceIndex:
    delivered = int(header["delivered"])
    if delivered > len(entries) or len(edges) != delivered:
        raise StorageError(
            "query-index snapshot covers more deliveries than the store "
            f"holds ({delivered} > {len(entries)})"
        )
    covered = entries[:delivered]
    principals = [Principal(name) for name in header["principals"]]
    sets = [
        frozenset(principals[i] for i in members)
        for members in nodes["sets"]
    ]
    rows = nodes["rows"]
    index = ProvenanceIndex()
    walk = enumerate_nodes(_record_roots(covered))
    if len(walk) != len(rows):
        raise StorageError(
            "query-index snapshot node rows do not align with the "
            f"record ({len(rows)} rows, {len(walk)} nodes)"
        )
    info_table = index._node_info
    for node, (senders_id, receivers_id, latest) in zip(walk, rows):
        info_table[node] = _NodeInfo(
            sets[senders_id],
            sets[receivers_id],
            None if latest < 0 else latest,
        )
    for ordinal, entry in enumerate(covered):
        roots = tuple(value.provenance for value in entry.values)
        senders: frozenset = frozenset()
        receivers: frozenset = frozenset()
        for root in roots:
            info = info_table[root] if len(root) else None
            if info is None:
                continue
            if not senders >= info.senders:
                senders = senders | info.senders if senders else info.senders
            if not receivers >= info.receivers:
                receivers = (
                    receivers | info.receivers
                    if receivers
                    else info.receivers
                )
            index._root_of.setdefault(root, ordinal)
        index._deliveries.append(
            IndexedDelivery(
                ordinal,
                entry.time,
                entry.principal,
                entry.channel,
                entry.branch_index,
                entry.values,
                roots,
                senders,
                receivers,
            )
        )
        index._last_by_principal[entry.principal] = ordinal
        index._last_by_channel[entry.channel] = ordinal
        index._received_by.setdefault(entry.principal, []).append(ordinal)
        index._on_channel.setdefault(entry.channel, []).append(ordinal)
        preds = tuple(
            HBEdge((_CODE_KIND[code], source)) for code, source in edges[ordinal]
        )
        index._hb_preds.append(preds)
        index._hb_succs.append([])
        for _, source in preds:
            successors = index._hb_succs[source]
            if not successors or successors[-1] != ordinal:
                successors.append(ordinal)
    index.generation = int(header["generation"])
    index.events_indexed = int(header["events_indexed"])
    index._generation_marks = [int(mark) for mark in header["marks"]]
    index._generation_work = [int(work) for work in header["work"]]
    return index


def load_index(
    store: Union[DurableStore, str, Path],
    entries: Sequence,
) -> Optional[Tuple[ProvenanceIndex, int]]:
    """Reload the newest usable snapshot against the decoded record.

    Returns ``(index, snapshot generation)`` or ``None`` when no
    snapshot loads cleanly (corrupt, stale format, or covering more
    deliveries than the store now holds — all fall back silently; the
    caller rebuilds from the record).
    """

    if not isinstance(store, DurableStore):
        store = DurableStore(store)
    for generation in reversed(store.query_index_generations()):
        try:
            header, edges, nodes = _read_snapshot(
                store.query_index_path(generation)
            )
            return _rebuild(header, edges, nodes, entries), generation
        except StorageError:
            continue
    return None


def resume_index(
    store: Union[DurableStore, str, Path],
    record: Optional[RecordView] = None,
) -> Tuple[ProvenanceIndex, dict]:
    """An index over the store's full record, resumed, not rebuilt.

    Loads the newest snapshot and extends it with only the journal
    suffix the snapshot has not seen — O(new events).  Falls back to a
    full (in-memory, still one-pass) build when no snapshot exists.
    Returns ``(index, info)`` where ``info`` reports how much work the
    snapshot saved.
    """

    if not isinstance(store, DurableStore):
        store = DurableStore(store)
    if record is None:
        record = collect_entries(store)
    loaded = load_index(store, record.entries)
    if loaded is None:
        index = ProvenanceIndex()
        snapshot_generation = 0
    else:
        index, snapshot_generation = loaded
    resumed = index.delivered
    extended = len(record.entries) - resumed
    work_before = index.events_indexed
    index.extend_entries(record.entries[resumed:])
    return index, {
        "snapshot_generation": snapshot_generation,
        "resumed_deliveries": resumed,
        "extended_deliveries": extended,
        # indexing work actually performed in-process by this resume —
        # the O(new events) figure (a full rebuild would have spent
        # index.events_indexed)
        "extended_work": index.events_indexed - work_before,
    }
