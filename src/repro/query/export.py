"""Interchange exports: W3C PROV-JSON and graphviz DOT.

The mapping from the calculus onto PROV:

* every principal is an ``agent`` (``agent:a``);
* every delivery is an ``activity`` (``activity:deliver-<ordinal>``)
  associated with its receiving principal;
* every distinct delivered value history is an ``entity`` keyed by its
  Merkle digest (``entity:<hex16>``) — structurally equal histories
  across deliveries collapse to one entity, exactly as they do in
  memory;
* a delivery *generates* the entities of its stamped values and *uses*
  the entities of its dataflow predecessors; ``wasDerivedFrom`` mirrors
  the derivation edges and ``wasInformedBy`` the remaining
  happens-before edges.

DOT output draws the same graph directly: one node per delivery, solid
edges for dataflow, dashed for program/channel order.  Both exporters
are pure functions of the index — they never mutate it beyond absorbing
any pending observations.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.provenance import Provenance
from repro.query.index import DERIVES, ProvenanceIndex

__all__ = ["to_prov_json", "to_dot", "spine_to_dot"]


def _entity_id(provenance: Provenance) -> str:
    return f"entity:{provenance.digest.hex()}"


def to_prov_json(
    index: ProvenanceIndex, limit: Optional[int] = None
) -> dict:
    """The delivered trace as a W3C PROV-JSON document (a dict).

    ``limit`` caps the exported deliveries (earliest first) for
    previews; entities and agents include only what those deliveries
    reference.
    """

    index.commit()
    records = index.deliveries()
    if limit is not None:
        records = records[:limit]
    agents: dict = {}
    entities: dict = {}
    activities: dict = {}
    used: dict = {}
    generated: dict = {}
    associated: dict = {}
    derived: dict = {}
    informed: dict = {}
    relation = iter(range(1, 1 << 30))

    def rel(table: dict, payload: dict) -> None:
        table[f"_:r{next(relation)}"] = payload

    for record in records:
        activity = f"activity:deliver-{record.ordinal}"
        agent = f"agent:{record.principal.name}"
        agents.setdefault(agent, {"prov:label": record.principal.name})
        activities[activity] = {
            "prov:label": (
                f"deliver #{record.ordinal} on {record.channel.name}"
            ),
            "repro:time": record.time,
            "repro:channel": record.channel.name,
            "repro:branch": record.branch_index,
        }
        rel(associated, {"prov:activity": activity, "prov:agent": agent})
        for value, root in zip(record.values, record.roots):
            entity = _entity_id(root)
            entities.setdefault(
                entity,
                {
                    "prov:label": value.value.name,
                    "repro:spine_events": len(root),
                },
            )
            rel(
                generated,
                {"prov:entity": entity, "prov:activity": activity},
            )
        for kind, source in index.predecessors(record.ordinal):
            if source >= len(records):
                continue
            previous = f"activity:deliver-{source}"
            if kind == DERIVES:
                for root in index.delivery(source).roots:
                    rel(
                        used,
                        {
                            "prov:activity": activity,
                            "prov:entity": _entity_id(root),
                        },
                    )
                for mine, theirs in zip(
                    record.roots, index.delivery(source).roots
                ):
                    rel(
                        derived,
                        {
                            "prov:generatedEntity": _entity_id(mine),
                            "prov:usedEntity": _entity_id(theirs),
                        },
                    )
            else:
                rel(
                    informed,
                    {
                        "prov:informed": activity,
                        "prov:informant": previous,
                        "repro:order": kind,
                    },
                )
    document = {
        "prefix": {
            "repro": "urn:repro:provenance-calculus:",
            "agent": "urn:repro:agent:",
            "entity": "urn:repro:entity:",
            "activity": "urn:repro:activity:",
        },
        "agent": agents,
        "entity": entities,
        "activity": activities,
        "wasAssociatedWith": associated,
        "wasGeneratedBy": generated,
        "used": used,
        "wasDerivedFrom": derived,
        "wasInformedBy": informed,
    }
    return document


def write_prov_json(index: ProvenanceIndex, path, limit=None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_prov_json(index, limit=limit), handle, indent=2)
        handle.write("\n")


def to_dot(index: ProvenanceIndex, limit: Optional[int] = None) -> str:
    """The happens-before graph as graphviz DOT text."""

    index.commit()
    records = index.deliveries()
    if limit is not None:
        records = records[:limit]
    lines = [
        "digraph provenance {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for record in records:
        label = (
            f"#{record.ordinal} {record.principal.name}"
            f"@{record.channel.name}\\nt={record.time:g}"
        )
        lines.append(f'  d{record.ordinal} [label="{label}"];')
    count = len(records)
    for record in records:
        for kind, source in index.predecessors(record.ordinal):
            if source >= count:
                continue
            style = (
                "solid" if kind == DERIVES else "dashed"
            )
            lines.append(
                f"  d{source} -> d{record.ordinal} "
                f'[style={style}, label="{kind}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def spine_to_dot(provenance: Provenance, name: str = "spine") -> str:
    """One value's spine (with nested channel provenances) as DOT."""

    lines = [
        f"digraph {name} {{",
        "  rankdir=RL;",
        '  node [shape=ellipse, fontname="Helvetica"];',
    ]
    ids: dict = {}

    def node_id(node: Provenance) -> str:
        existing = ids.get(node)
        if existing is None:
            existing = f"n{len(ids)}"
            ids[node] = existing
        return existing

    emitted = set()
    stack = [provenance]
    while stack:
        node = stack.pop()
        if node in emitted or not len(node):
            continue
        emitted.add(node)
        this = node_id(node)
        event = node.head
        lines.append(
            f'  {this} [label="{event.principal.name}{event.symbol}"];'
        )
        if len(node.tail):
            lines.append(f"  {this} -> {node_id(node.tail)};")
            stack.append(node.tail)
        nested = event.channel_provenance
        if len(nested):
            lines.append(
                f'  {this} -> {node_id(nested)} [style=dotted, label="chan"];'
            )
            stack.append(nested)
    lines.append("}")
    return "\n".join(lines) + "\n"
