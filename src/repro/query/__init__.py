"""Provenance analytics: a queryable index over the delivered trace.

The capture layers (engine, runtime, storage) make every value carry its
history; this package makes those histories *consultable* — Cheney-style
provenance traces as artifacts supporting dependency and disclosure
slicing:

* :mod:`repro.query.index` — :class:`ProvenanceIndex`, the
  generation-indexed happens-before / dataflow graphs with where/why
  queries (derivation slices, taint reachability, cone-of-influence,
  minimal witness suffixes via one incremental-DFA pass);
* :mod:`repro.query.planner` — posting-list access-path selection,
  informed by the log's :meth:`~repro.logs.order.LogIndex.
  signature_buckets` when available;
* :mod:`repro.query.export` — W3C PROV-JSON and graphviz DOT;
* :mod:`repro.query.persist` — snapshot/resume per checkpoint
  generation so ``repro recover`` and ``repro query`` pick up an index
  without re-deriving the full history.

Feed an index live (``runtime.attach_query_index()``), from a sharded
run (``sharded.build_query_index()``), or from a durable store
(:func:`~repro.query.persist.resume_index`); see the README's
"Querying provenance" walkthrough and ``examples/provenance_queries.py``.
"""

from repro.query.export import (
    spine_to_dot,
    to_dot,
    to_prov_json,
    write_prov_json,
)
from repro.query.index import (
    CHANNEL,
    DERIVES,
    EDGE_KINDS,
    PROGRAM,
    HBEdge,
    IndexedDelivery,
    ProvenanceIndex,
    default_index,
    suffix_decider,
)
from repro.query.persist import (
    enumerate_nodes,
    load_index,
    resume_index,
    save_index,
)
from repro.query.planner import QueryPlan, plan_where, run_where

__all__ = [
    "CHANNEL",
    "DERIVES",
    "EDGE_KINDS",
    "PROGRAM",
    "HBEdge",
    "IndexedDelivery",
    "ProvenanceIndex",
    "QueryPlan",
    "default_index",
    "enumerate_nodes",
    "load_index",
    "plan_where",
    "resume_index",
    "run_where",
    "save_index",
    "spine_to_dot",
    "suffix_decider",
    "to_dot",
    "to_prov_json",
    "write_prov_json",
]
