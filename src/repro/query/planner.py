"""A small cost-based planner for trace queries.

The index keeps exact posting lists for the two delivery-metadata axes
(receiving principal, channel) and memoized sender sets per delivery for
the history axis.  A *where* query may constrain any combination; the
planner picks the cheapest access path:

* a posting list when one exists for a constrained axis (choosing the
  shortest when several apply), residual constraints filtered per
  ordinal;
* the full scan otherwise (the sender axis has no posting list on
  purpose — maintaining one costs O(|senders|) per delivery, which is
  O(history) on relay chains, exactly the blow-up the index avoids).

When the caller holds a :class:`~repro.logs.order.LogIndex` over the
engine's global log, its :meth:`~repro.logs.order.LogIndex.
signature_buckets` histogram refines the estimate for the sender axis:
the number of logged actions by a principal bounds how many deliveries
can carry its sends, which decides whether the planner reports the scan
as selective.  The buckets inform *estimates* only — execution is always
exact against the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.names import Channel, Principal
from repro.query.index import ProvenanceIndex

__all__ = ["QueryPlan", "plan_where", "run_where"]


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """An access-path decision for one *where* query."""

    access: str
    """``"received-by"``, ``"on-channel"`` or ``"scan"``."""

    cost: int
    """Ordinals the chosen path must touch."""

    estimated_matches: int
    """Upper bound on result size (buckets-refined when available)."""

    residual: Tuple[str, ...]
    """Constraint axes filtered per-ordinal after the access path."""

    def describe(self) -> str:
        residual = (
            f" filtering {', '.join(self.residual)}" if self.residual else ""
        )
        return (
            f"{self.access} (~{self.cost} ordinals, "
            f"≤{self.estimated_matches} matches){residual}"
        )


def _bucket_activity(buckets: Optional[dict], principal: Principal) -> int:
    """Logged actions attributed to ``principal``, any kind/arity.

    ``buckets`` is the ``(kind, principal, arity) → count`` histogram
    from :meth:`LogIndex.signature_buckets`; a principal's total log
    activity upper-bounds the deliveries that can carry its sends.
    """

    if buckets is None:
        return -1
    return sum(
        count
        for (kind, who, _arity), count in buckets.items()
        if who == principal
    )


def plan_where(
    index: ProvenanceIndex,
    sender: Optional[Principal] = None,
    receiver: Optional[Principal] = None,
    channel: Optional[Channel] = None,
    signature_buckets: Optional[dict] = None,
) -> QueryPlan:
    """Pick the cheapest access path for the given constraints."""

    index.commit()  # plans reflect every observed delivery
    total = index.delivered
    candidates = []
    if receiver is not None:
        candidates.append(("received-by", len(index.received_by(receiver))))
    if channel is not None:
        candidates.append(("on-channel", len(index.on_channel(channel))))
    residual_axes = []
    if sender is not None:
        residual_axes.append("sender")
    if candidates:
        candidates.sort(key=lambda item: item[1])
        access, cost = candidates[0]
        for axis, _ in candidates[1:]:
            residual_axes.append(
                "receiver" if axis == "received-by" else "channel"
            )
        estimated = cost
        if sender is not None:
            activity = _bucket_activity(signature_buckets, sender)
            if 0 <= activity < estimated:
                estimated = activity
        return QueryPlan(access, cost, estimated, tuple(residual_axes))
    estimated = total
    if sender is not None:
        activity = _bucket_activity(signature_buckets, sender)
        if 0 <= activity < estimated:
            estimated = activity
    return QueryPlan("scan", total, estimated, tuple(residual_axes))


def run_where(
    index: ProvenanceIndex,
    sender: Optional[Principal] = None,
    receiver: Optional[Principal] = None,
    channel: Optional[Channel] = None,
    signature_buckets: Optional[dict] = None,
) -> Tuple[Tuple[int, ...], QueryPlan]:
    """Execute a *where* query; returns ``(ordinals, plan)``.

    Results are exact regardless of the plan: the access path only
    decides which ordinals get touched.
    """

    plan = plan_where(
        index,
        sender=sender,
        receiver=receiver,
        channel=channel,
        signature_buckets=signature_buckets,
    )
    if plan.access == "received-by":
        pool = index.received_by(receiver)
    elif plan.access == "on-channel":
        pool = index.on_channel(channel)
    else:
        pool = range(index.delivered)
    matches = []
    for ordinal in pool:
        record = index.delivery(ordinal)
        if receiver is not None and record.principal != receiver:
            continue
        if channel is not None and record.channel != channel:
            continue
        if sender is not None and sender not in record.senders:
            continue
        matches.append(ordinal)
    return tuple(matches), plan
