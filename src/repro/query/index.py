"""The generation-indexed provenance analytics index.

Capture (PRs 1–9) made provenance cheap to *carry*; this module makes it
cheap to *consult*.  A :class:`ProvenanceIndex` absorbs the delivered
trace — live, through the middleware's delivery-observer hook, or after
the fact from a merged shard trace or a durable store — and derives two
graphs over it:

* **happens-before**: delivery *i* → *j* when *j* is the next delivery
  to the same receiving principal (program order), the next delivery on
  the same channel (channel order), or a delivery whose value's spine
  extends a spine delivered at *i* (derivation);
* **dataflow**: the derivation edges alone — the paper's ``κ_j = …; κ_i``
  relation cashed out as an ordinal graph.

Indexing is **once per log generation, not per query**: each
:meth:`~ProvenanceIndex.commit` absorbs the pending batch and bumps the
generation; queries between commits are pure lookups.  The absorb cost
is O(new events), not O(history): hash-consing means a delivered spine
shares its entire tail with previously indexed deliveries, so the
per-node walk (:meth:`~ProvenanceIndex._node_info_of`) stops at the
first already-indexed node and computes sender/receiver sets and the
derivation anchor only for genuinely new nodes.  The
:attr:`~ProvenanceIndex.events_indexed` counter exposes that work
explicitly — ``benchmarks/bench_query_layer.py`` (E24) gates it flat
per batch as history grows.

Query results memoize at two lifetimes:

* per-spine-node sweeps (:meth:`matching_suffixes`,
  :meth:`minimal_witness`) are cached **forever** — a node's suffix
  history is immutable, so the answer can never change;
* trace-global answers (:meth:`derived_from_sends`, :meth:`taint`,
  :meth:`cone_of_influence`) are cached until the next commit extends
  the delivery set.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.names import Channel, Principal
from repro.core.patterns import Pattern
from repro.core.provenance import EMPTY, Event, OutputEvent, Provenance
from repro.patterns.ast import SamplePattern
from repro.patterns.dfa import PolicyEngine

__all__ = [
    "HBEdge",
    "IndexedDelivery",
    "ProvenanceIndex",
    "default_index",
    "suffix_decider",
]

PROGRAM = "program"
CHANNEL = "channel"
DERIVES = "derives"

EDGE_KINDS = (PROGRAM, CHANNEL, DERIVES)

_EMPTY_SET: frozenset = frozenset()


def suffix_decider(pattern: Pattern, engine: PolicyEngine):
    """One ``suffix ↦ bool`` decision procedure for a whole sweep.

    Sample patterns ride the incremental lazy-DFA engine — deciding the
    longest suffix caches the automaton state at every spine node, so
    the rest of the sweep is cache hits.  Foreign patterns fall back to
    their own ``matches``.
    """

    if isinstance(pattern, SamplePattern):
        return lambda suffix: engine.matches(suffix, pattern)
    return pattern.matches


class _NodeInfo:
    """Per-interned-spine-node facts, computed once when first indexed.

    ``latest_root`` is the ordinal of the most recent delivery whose
    value's *root* spine lies at or below this node at the time the node
    was indexed — the anchor the derivation edges hang off.
    """

    __slots__ = ("senders", "receivers", "latest_root")

    def __init__(
        self,
        senders: frozenset,
        receivers: frozenset,
        latest_root: Optional[int],
    ) -> None:
        self.senders = senders
        self.receivers = receivers
        self.latest_root = latest_root


class HBEdge(tuple):
    """A happens-before edge ``(kind, source ordinal)`` — plain tuple."""

    __slots__ = ()

    @property
    def kind(self) -> str:
        return self[0]

    @property
    def source(self) -> int:
        return self[1]


class IndexedDelivery:
    """One absorbed delivery with its derived facts."""

    __slots__ = (
        "ordinal",
        "time",
        "principal",
        "channel",
        "branch_index",
        "values",
        "roots",
        "senders",
        "receivers",
    )

    def __init__(
        self,
        ordinal: int,
        time: float,
        principal: Principal,
        channel: Channel,
        branch_index: int,
        values: tuple,
        roots: Tuple[Provenance, ...],
        senders: frozenset,
        receivers: frozenset,
    ) -> None:
        self.ordinal = ordinal
        self.time = time
        self.principal = principal
        self.channel = channel
        self.branch_index = branch_index
        self.values = values
        self.roots = roots
        self.senders = senders
        self.receivers = receivers

    def trace_tuple(self) -> tuple:
        """The merged-trace comparison shape used across the repo."""

        return (
            self.time,
            self.principal,
            self.channel,
            self.values,
            self.branch_index,
        )

    def __repr__(self) -> str:
        return (
            f"IndexedDelivery(#{self.ordinal} t={self.time} "
            f"{self.principal}@{self.channel})"
        )


class ProvenanceIndex:
    """Happens-before + dataflow graphs over the delivered trace.

    Feed it deliveries through :meth:`observe_delivery` (the middleware
    observer signature), :meth:`extend_trace` (a merged trace or a
    decoded durable record), then ask where/why questions.  See the
    module docstring for the cost model.
    """

    def __init__(self, engine: Optional[PolicyEngine] = None) -> None:
        self.generation = 0
        """Committed log generations absorbed so far."""
        self.events_indexed = 0
        """Spine nodes + events walked while indexing — the O(new
        events) work counter E24 gates."""
        self._deliveries: List[IndexedDelivery] = []
        self._pending: List[tuple] = []
        self._node_info: dict = {}
        self._event_info: dict = {}
        self._root_of: dict = {}
        self._last_by_principal: dict = {}
        self._last_by_channel: dict = {}
        self._received_by: dict = {}
        self._on_channel: dict = {}
        self._hb_preds: List[Tuple[HBEdge, ...]] = []
        self._hb_succs: List[List[int]] = []
        self._generation_marks: List[int] = []
        self._generation_work: List[int] = []
        self._engine = engine if engine is not None else PolicyEngine()
        self._sweep_cache: dict = {}
        self._global_cache: dict = {}
        empty = _NodeInfo(_EMPTY_SET, _EMPTY_SET, None)
        self._node_info[EMPTY] = empty

    # -- feeding ---------------------------------------------------------

    def observe_delivery(
        self,
        time: float,
        principal: Principal,
        channel: Channel,
        values: tuple,
        branch_index: int,
    ) -> None:
        """Middleware observer hook: O(1) append; indexed at commit."""

        self._pending.append((time, principal, channel, values, branch_index))

    @property
    def pending(self) -> int:
        """Deliveries observed but not yet absorbed into a generation."""

        return len(self._pending)

    def commit(self) -> int:
        """Absorb the pending batch as one log generation.

        Returns the number of deliveries absorbed (0 when idle, in which
        case the generation counter does not move).  Trace-global query
        caches are invalidated; per-node sweep caches stay — a spine
        node's suffix history is immutable.
        """

        batch = self._pending
        if not batch:
            return 0
        self._pending = []
        before = self.events_indexed
        for entry in batch:
            self._absorb(*entry)
        self.generation += 1
        self._generation_marks.append(len(self._deliveries))
        self._generation_work.append(self.events_indexed - before)
        self._global_cache.clear()
        return len(batch)

    def extend_trace(self, trace: Iterable[tuple]) -> int:
        """Absorb ``(time, principal, channel, values, branch)`` tuples.

        One call is one generation — the shape produced by
        ``ShardedRuntime.delivered_trace()``,
        ``RecoveredState.delivered_trace()`` and the metrics'
        ``delivered`` records (via their field order).
        """

        for entry in trace:
            time, principal, channel, values, branch = entry
            self._pending.append((time, principal, channel, values, branch))
        return self.commit()

    def extend_entries(self, entries: Iterable) -> int:
        """Absorb decoded :class:`~repro.storage.journal.DeliveryEntry`."""

        for entry in entries:
            self._pending.append(
                (
                    entry.time,
                    entry.principal,
                    entry.channel,
                    entry.values,
                    entry.branch_index,
                )
            )
        return self.commit()

    # -- indexing (the O(new events) core) -------------------------------

    def _node_info_of(self, node: Provenance) -> _NodeInfo:
        """Facts for ``node``, walking only nodes never indexed before.

        Iterative post-order over the spine *and* nested channel
        provenances; stops at any node already in the table, which by
        hash-consing covers every previously indexed suffix — repeated
        deliveries over a shared history index in O(1).
        """

        cache = self._node_info
        info = cache.get(node)
        if info is not None:
            return info
        events = self._event_info
        work = [node]
        while work:
            top = work[-1]
            if top in cache:
                work.pop()
                continue
            head = top.head
            head_info = events.get(head)
            if head_info is None:
                nested = cache.get(head.channel_provenance)
                if nested is None:
                    work.append(head.channel_provenance)
                    continue
                if type(head) is OutputEvent:
                    senders = nested.senders
                    if head.principal not in senders:
                        senders = senders | {head.principal}
                    head_info = (senders, nested.receivers)
                else:
                    receivers = nested.receivers
                    if head.principal not in receivers:
                        receivers = receivers | {head.principal}
                    head_info = (nested.senders, receivers)
                events[head] = head_info
                self.events_indexed += 1
            tail = top.tail
            tail_info = cache.get(tail)
            if tail_info is None:
                work.append(tail)
                continue
            senders = tail_info.senders
            if not head_info[0] <= senders:
                senders = senders | head_info[0]
            receivers = tail_info.receivers
            if not head_info[1] <= receivers:
                receivers = receivers | head_info[1]
            cache[top] = _NodeInfo(senders, receivers, tail_info.latest_root)
            self.events_indexed += 1
            work.pop()
        return cache[node]

    def _absorb(
        self,
        time: float,
        principal: Principal,
        channel: Channel,
        values: tuple,
        branch_index: int,
    ) -> None:
        ordinal = len(self._deliveries)
        roots = tuple(value.provenance for value in values)
        edges: List[HBEdge] = []
        last = self._last_by_principal.get(principal)
        if last is not None:
            edges.append(HBEdge((PROGRAM, last)))
        self._last_by_principal[principal] = ordinal
        last = self._last_by_channel.get(channel)
        if last is not None and (not edges or edges[0][1] != last):
            edges.append(HBEdge((CHANNEL, last)))
        self._last_by_channel[channel] = ordinal
        senders: frozenset = _EMPTY_SET
        receivers: frozenset = _EMPTY_SET
        derived: set = set()
        for root in roots:
            info = self._node_info_of(root)
            if not senders >= info.senders:
                senders = senders | info.senders if senders else info.senders
            if not receivers >= info.receivers:
                receivers = (
                    receivers | info.receivers if receivers else info.receivers
                )
            if len(root):
                previous = info.latest_root
                if previous is not None and previous != ordinal:
                    derived.add(previous)
                info.latest_root = ordinal
                self._root_of.setdefault(root, ordinal)
        for source in sorted(derived):
            edges.append(HBEdge((DERIVES, source)))
        self._deliveries.append(
            IndexedDelivery(
                ordinal,
                time,
                principal,
                channel,
                branch_index,
                values,
                roots,
                senders,
                receivers,
            )
        )
        self._received_by.setdefault(principal, []).append(ordinal)
        self._on_channel.setdefault(channel, []).append(ordinal)
        self._hb_preds.append(tuple(edges))
        self._hb_succs.append([])
        succs = self._hb_succs
        for edge in edges:
            successors = succs[edge[1]]
            if not successors or successors[-1] != ordinal:
                successors.append(ordinal)

    # -- introspection ---------------------------------------------------

    @property
    def delivered(self) -> int:
        return len(self._deliveries)

    @property
    def generation_marks(self) -> Tuple[int, ...]:
        """Delivered count at each committed generation boundary."""

        return tuple(self._generation_marks)

    @property
    def generation_work(self) -> Tuple[int, ...]:
        """``events_indexed`` delta spent absorbing each generation."""

        return tuple(self._generation_work)

    def delivery(self, ordinal: int) -> IndexedDelivery:
        return self._deliveries[ordinal]

    def deliveries(self) -> Sequence[IndexedDelivery]:
        return tuple(self._deliveries)

    def predecessors(self, ordinal: int) -> Tuple[HBEdge, ...]:
        """The labelled happens-before edges into ``ordinal``."""

        return self._hb_preds[ordinal]

    def successors(self, ordinal: int) -> Tuple[int, ...]:
        return tuple(self._hb_succs[ordinal])

    def edge_counts(self) -> dict:
        counts = {kind: 0 for kind in EDGE_KINDS}
        for edges in self._hb_preds:
            for kind, _ in edges:
                counts[kind] += 1
        return counts

    def received_by(self, principal: Principal) -> Tuple[int, ...]:
        """Posting list: ordinals delivered *to* ``principal``."""

        return tuple(self._received_by.get(principal, ()))

    def on_channel(self, channel: Channel) -> Tuple[int, ...]:
        """Posting list: ordinals delivered on ``channel``."""

        return tuple(self._on_channel.get(channel, ()))

    def known_principals(self) -> frozenset:
        return frozenset(self._received_by)

    def known_channels(self) -> frozenset:
        return frozenset(self._on_channel)

    def summary(self) -> dict:
        edges = self.edge_counts()
        return {
            "delivered": self.delivered,
            "pending": self.pending,
            "generation": self.generation,
            "events_indexed": self.events_indexed,
            "spine_nodes": len(self._node_info) - 1,
            "hb_edges": sum(edges.values()),
            "edge_counts": edges,
            "principals": sorted(p.name for p in self._received_by),
            "channels": sorted(c.name for c in self._on_channel),
        }

    # -- where/why queries -----------------------------------------------

    def _settled(self) -> None:
        if self._pending:
            self.commit()

    def derived_from_sends(self, principal: Principal) -> Tuple[int, ...]:
        """All deliveries whose value history contains a send by
        ``principal`` — the paper's "who touched it" read, as a *where*
        query.  O(deliveries) scan over memoized per-root sender sets;
        cached until the next commit.
        """

        self._settled()
        key = ("derived_from_sends", principal)
        cached = self._global_cache.get(key)
        if cached is None:
            cached = tuple(
                record.ordinal
                for record in self._deliveries
                if principal in record.senders
            )
            self._global_cache[key] = cached
        return cached

    def taint(
        self, principal: Principal, kinds: Tuple[str, ...] = (DERIVES, CHANNEL)
    ) -> Tuple[int, ...]:
        """Forward reachability from every delivery ``principal`` sent
        into — everything the principal's output may have influenced,
        following the given edge kinds (default: dataflow + channel
        order).
        """

        self._settled()
        key = ("taint", principal, kinds)
        cached = self._global_cache.get(key)
        if cached is not None:
            return cached
        seeds = [
            record.ordinal
            for record in self._deliveries
            if principal in record.senders or record.principal == principal
        ]
        reached = self._forward_closure(seeds, kinds)
        cached = tuple(sorted(reached))
        self._global_cache[key] = cached
        return cached

    def cone_of_influence(
        self,
        ordinal: int,
        kinds: Tuple[str, ...] = EDGE_KINDS,
    ) -> Tuple[int, ...]:
        """Backward slice: every delivery that happens-before ``ordinal``
        along the given edge kinds (the *why* of a delivery)."""

        self._settled()
        key = ("cone", ordinal, kinds)
        cached = self._global_cache.get(key)
        if cached is not None:
            return cached
        wanted = frozenset(kinds)
        seen = {ordinal}
        frontier = [ordinal]
        while frontier:
            current = frontier.pop()
            for kind, source in self._hb_preds[current]:
                if kind in wanted and source not in seen:
                    seen.add(source)
                    frontier.append(source)
        seen.discard(ordinal)
        cached = tuple(sorted(seen))
        self._global_cache[key] = cached
        return cached

    def _forward_closure(
        self, seeds: Iterable[int], kinds: Tuple[str, ...]
    ) -> set:
        wanted = frozenset(kinds)
        seen = set(seeds)
        frontier = list(seen)
        preds = self._hb_preds
        succs = self._hb_succs
        while frontier:
            current = frontier.pop()
            for successor in succs[current]:
                if successor in seen:
                    continue
                for kind, source in preds[successor]:
                    if source == current and kind in wanted:
                        seen.add(successor)
                        frontier.append(successor)
                        break
        return seen

    def happens_before(self, earlier: int, later: int) -> bool:
        """Is there a happens-before path ``earlier → … → later``?"""

        self._settled()
        if earlier == later:
            return False
        seen = {later}
        frontier = [later]
        while frontier:
            current = frontier.pop()
            for _, source in self._hb_preds[current]:
                if source == earlier:
                    return True
                if source not in seen:
                    seen.add(source)
                    frontier.append(source)
        return False

    # -- suffix sweeps (forever-cached) ----------------------------------

    def matching_suffixes(
        self, provenance: Provenance, pattern: Pattern
    ) -> Tuple[Provenance, ...]:
        """All suffixes of the spine satisfying ``pattern``, longest
        first — one incremental-DFA pass, memoized forever per
        ``(node, pattern)``: a spine node's suffix history is immutable,
        so warm repeats are a dict hit (the E24 ≥10× gate).
        """

        key = (provenance, pattern)
        cached = self._sweep_cache.get(key)
        if cached is None:
            decide = suffix_decider(pattern, self._engine)
            cached = tuple(
                suffix for suffix in provenance.suffixes() if decide(suffix)
            )
            self._sweep_cache[key] = cached
        return cached

    def minimal_witness(
        self, provenance: Provenance, pattern: Pattern
    ) -> Optional[Provenance]:
        """The *shortest* suffix satisfying ``pattern`` (``None`` if no
        suffix does): the minimal witness that the history can satisfy
        the policy.  One pass, longest-first, keeping the last match.
        """

        key = (provenance, pattern, "witness")
        if key in self._sweep_cache:
            return self._sweep_cache[key]
        decide = suffix_decider(pattern, self._engine)
        witness: Optional[Provenance] = None
        for suffix in provenance.suffixes():
            if decide(suffix):
                witness = suffix
        self._sweep_cache[key] = witness
        return witness

    def first_compliant_suffix(
        self, provenance: Provenance, pattern: Pattern
    ) -> Optional[Provenance]:
        """The *longest* compliant suffix (audit's "since when")."""

        matches = self.matching_suffixes(provenance, pattern)
        return matches[0] if matches else None

    def iter_value_witnesses(
        self, ordinal: int, pattern: Pattern
    ) -> Iterator[Tuple[Provenance, Optional[Provenance]]]:
        """``(root, minimal witness)`` per value of delivery ``ordinal``."""

        self._settled()
        for root in self._deliveries[ordinal].roots:
            yield root, self.minimal_witness(root, pattern)


_DEFAULT: Optional[ProvenanceIndex] = None


def default_index() -> ProvenanceIndex:
    """The process-global index ad-hoc sweeps (``analysis.audit``) ride.

    Shares nothing with any runtime-attached index; it exists so repeat
    audits over the same interned spines answer from the sweep cache.
    """

    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ProvenanceIndex()
    return _DEFAULT
