"""repro — a faithful implementation of the provenance calculus.

Reproduction of *A Formal Model of Provenance in Distributed Systems*
(Souilah, Francalanza, Sassone; TaPP/FAST workshop 2009): an asynchronous
pi-calculus with explicit identities, provenance-annotated data, a
provenance-tracking reduction semantics and pattern-restricted input,
together with the paper's meta-theory (logs, the information order, the
denotation of provenance, monitored systems, correctness/completeness
checkers) and the extensions its §5 sketches (trust, static analysis,
disclosure control), plus a simulated distributed runtime.

Quickstart::

    from repro import parse_system, run, pretty_system

    system = parse_system('''
        a[m<v>] || s[m(x).n1<x>] || c[n1(x).0]
    ''')
    trace = run(system)
    print(pretty_system(trace.final))

Packages
--------

``repro.core``      calculus kernel: syntax, semantics, engine, explorer
``repro.patterns``  the sample pattern language of Table 3
``repro.lang``      concrete syntax (parser and pretty-printer)
``repro.logs``      logs, the ``⪯`` order, the denotation of provenance
``repro.monitor``   monitored systems and the correctness/completeness checkers
``repro.runtime``   discrete-event simulation of the trusted middleware
``repro.analysis``  trust, static flow analysis, privacy, audit
``repro.workloads`` workload generators for tests and benchmarks
"""

from repro.core import (
    AnnotatedValue,
    Channel,
    EMPTY,
    Engine,
    FirstStrategy,
    InputEvent,
    LTS,
    OutputEvent,
    Principal,
    Provenance,
    RandomStrategy,
    SemanticsMode,
    System,
    Trace,
    Variable,
    annotate,
    enumerate_steps,
    explore,
    run,
)
from repro.lang import (
    parse_process,
    parse_provenance,
    parse_system,
    pretty_process,
    pretty_provenance,
    pretty_system,
)
from repro.logs import denote, log_leq
from repro.monitor import (
    MonitoredSystem,
    check_completeness,
    check_correctness,
    has_complete_provenance,
    has_correct_provenance,
)
from repro.patterns import parse_pattern

__version__ = "1.0.0"

__all__ = [name for name in dir() if not name.startswith("_")]
