"""Atomic, generation-stamped checkpoints of the delivered record.

A checkpoint is itself a CRC-framed segment, written whole to a temp
file and published with an atomic rename — readers see a complete
checkpoint or none.  Layout::

    record 0    0x10 ‖ json header      (generation, time, events,
                                         summary, quarantined, notes,
                                         trace_digest, ...)
    record 1..n 0x01 delivery records   (re-encoded with one fresh
                                         streaming codec — full spine
                                         table, no external refs)
    record n+1  0x11 ‖ varint count ‖ digest16   (footer)

Because the deliveries are re-encoded against a *fresh* codec, the
checkpoint is self-contained: every spine node any journal generation
ever introduced is reachable from it, which is what licenses
:meth:`~repro.storage.segments.DurableStore.compact` to delete the
journals it subsumes.  The footer's chained trace digest must match a
recomputation over the decoded records *and* the header's claim, so a
bit flip anywhere in the segment fails validation and recovery falls
back to the next older checkpoint.

The runtime's live scheduler state (closures, blocked receivers) is
deliberately *not* snapshotted — it cannot be pickled and does not need
to be: the engine is deterministic, so the manifest's config plus the
delivered record is a complete description, and recovery re-executes
rather than resumes (see :mod:`repro.storage.recover`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.errors import StorageError
from repro.runtime.wire import Codec, decode_varint, encode_varint
from repro.storage.journal import (
    K_DELIVERY,
    K_FOOTER,
    K_HEADER,
    ZERO_DIGEST,
    DeliveryEntry,
    NoteEntry,
    chain_digest,
    decode_entry,
    encode_delivery_entry,
)
from repro.storage.segments import (
    DurableStore,
    atomic_write_bytes,
    frame_record,
    read_segment,
)

__all__ = [
    "Checkpoint",
    "RecordView",
    "collect_entries",
    "load_latest_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """A validated checkpoint: header state plus the full record."""

    generation: int
    header: dict
    entries: Tuple[DeliveryEntry, ...]
    trace_digest: bytes
    path: Path


@dataclass(frozen=True, slots=True)
class RecordView:
    """The store's full delivered record: checkpoint + journal suffix."""

    checkpoint: Optional[Checkpoint]
    entries: List[DeliveryEntry]
    notes: List[NoteEntry]
    torn: List[str] = field(default_factory=list)
    """Names of journal segments whose tails were torn (and truncated
    from the view)."""
    trace_digest: bytes = ZERO_DIGEST
    segments: List[Tuple[int, int]] = field(default_factory=list)
    """``(generation, cumulative delivery count)`` per source segment,
    in record order: the checkpoint first (if any), then each decoded
    journal generation.  Maps a delivery index back to the generation
    that persisted it — the diagnostic ``repro recover`` names when a
    replay diverges."""

    def generation_of(self, index: int) -> Optional[int]:
        """The generation whose segment holds delivery ``index``."""

        for generation, end in self.segments:
            if index < end:
                return generation
        return None


def write_checkpoint(
    store: DurableStore,
    generation: int,
    header: dict,
    entries,
) -> Path:
    """Write one self-contained checkpoint segment atomically.

    ``entries`` is the complete delivery record in order; each entry's
    ``(new_nodes, tags)`` pairs seed the tag table so the re-encoded
    records carry the same attestations.  If the header claims a
    ``trace_digest``, the recomputed chain must agree — a mismatch
    means the caller's record diverged from what it journaled.
    """

    codec = Codec()
    tag_by_node: dict = {}
    chunks = [
        frame_record(
            bytes((K_HEADER,))
            + json.dumps(header, sort_keys=True).encode("utf-8")
        )
    ]
    digest = ZERO_DIGEST
    count = 0
    for entry in entries:
        for node, tag in zip(entry.new_nodes, entry.tags):
            if tag is not None:
                tag_by_node[node] = tag
        payload, _, _ = encode_delivery_entry(
            codec,
            entry.time,
            entry.principal,
            entry.channel,
            entry.branch_index,
            entry.latency,
            entry.values,
            tag_by_node.get,
        )
        chunks.append(frame_record(payload))
        digest = chain_digest(digest, entry.key())
        count += 1
    claimed = header.get("trace_digest")
    if claimed is not None and claimed != digest.hex():
        raise StorageError(
            f"checkpoint {generation}: journaled trace digest "
            f"{claimed} != recomputed {digest.hex()}"
        )
    chunks.append(
        frame_record(bytes((K_FOOTER,)) + encode_varint(count) + digest)
    )
    return atomic_write_bytes(
        store.checkpoint_path(generation), b"".join(chunks)
    )


def read_checkpoint(path: Union[str, Path]) -> Checkpoint:
    """Read and validate one checkpoint; :class:`StorageError` if bad."""

    path = Path(path)
    view = read_segment(path)
    if view.torn:
        raise StorageError(f"checkpoint {path} is torn: {view.reason}")
    if len(view.records) < 2:
        raise StorageError(f"checkpoint {path} is missing header/footer")
    head = view.records[0]
    if not head or head[0] != K_HEADER:
        raise StorageError(f"checkpoint {path} does not start with a header")
    try:
        header = json.loads(head[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StorageError(
            f"checkpoint {path} header is corrupt: {error}"
        ) from None
    foot = view.records[-1]
    if not foot or foot[0] != K_FOOTER:
        raise StorageError(f"checkpoint {path} does not end with a footer")
    count, offset = decode_varint(foot, 1)
    stored_digest = foot[offset : offset + 16]
    if len(stored_digest) != 16 or offset + 16 != len(foot):
        raise StorageError(f"checkpoint {path} footer is malformed")
    codec = Codec()
    entries: List[DeliveryEntry] = []
    digest = ZERO_DIGEST
    for payload in view.records[1:-1]:
        if not payload or payload[0] != K_DELIVERY:
            raise StorageError(
                f"checkpoint {path} holds a non-delivery body record"
            )
        entry = decode_entry(payload, codec)
        entries.append(entry)
        digest = chain_digest(digest, entry.key())
    if count != len(entries):
        raise StorageError(
            f"checkpoint {path} footer claims {count} records, "
            f"found {len(entries)}"
        )
    if digest != stored_digest:
        raise StorageError(
            f"checkpoint {path} trace digest mismatch: footer "
            f"{stored_digest.hex()}, recomputed {digest.hex()}"
        )
    generation = int(header.get("generation", 0))
    return Checkpoint(
        generation=generation,
        header=header,
        entries=tuple(entries),
        trace_digest=digest,
        path=path,
    )


def load_latest_checkpoint(store: DurableStore) -> Optional[Checkpoint]:
    """Newest checkpoint that validates; older generations are the
    fallback when the newest is corrupt (e.g. a bit flip post-write)."""

    for generation in reversed(store.checkpoint_generations()):
        try:
            return read_checkpoint(store.checkpoint_path(generation))
        except StorageError:
            continue
    return None


def collect_entries(store: DurableStore) -> RecordView:
    """The full delivered record: newest valid checkpoint + suffix.

    Journal generations at or below the checkpoint's are skipped (they
    are subsumed, whether or not compaction already deleted them);
    newer generations are decoded in order, their torn tails truncated
    and reported.  The returned trace digest chains the checkpoint's
    digest through every suffix delivery.
    """

    from repro.storage.journal import read_journal

    checkpoint = load_latest_checkpoint(store)
    entries: List[DeliveryEntry] = (
        list(checkpoint.entries) if checkpoint else []
    )
    notes: List[NoteEntry] = []
    if checkpoint:
        notes.extend(
            NoteEntry(kind, detail)
            for kind, detail in checkpoint.header.get("notes", [])
        )
    torn: List[str] = []
    digest = checkpoint.trace_digest if checkpoint else ZERO_DIGEST
    base = checkpoint.generation if checkpoint else 0
    segments: List[Tuple[int, int]] = []
    if checkpoint is not None:
        segments.append((base, len(entries)))
    for generation in store.journal_generations():
        if generation <= base:
            continue
        path = store.journal_path(generation)
        decoded, was_torn = read_journal(path)
        if was_torn:
            torn.append(path.name)
        for entry in decoded:
            if isinstance(entry, DeliveryEntry):
                entries.append(entry)
                digest = chain_digest(digest, entry.key())
            else:
                notes.append(entry)
        segments.append((generation, len(entries)))
    return RecordView(
        checkpoint=checkpoint,
        entries=entries,
        notes=notes,
        torn=torn,
        trace_digest=digest,
        segments=segments,
    )
