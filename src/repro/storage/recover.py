"""Recovery: load the durable record and replay it deterministically.

Recovery has two halves:

* :func:`load_state` is pure reading — newest valid checkpoint, journal
  suffix decoded on top, notes folded into quarantine/revocation state,
  attestation tags collected.  No runtime is built; this is what
  ``repro recover DIR`` prints and what audits consume.

* :func:`verify_replay` is the paper's determinism contract cashed in:
  rebuild the runtime from the manifest's config, re-parse the
  manifest's system source, run it, and require the persisted record to
  be a **bit-identical prefix** of the fresh run's delivered trace —
  same times, principals, channels, branch indices, and stamped values
  (provenance spines compare by interned identity after decode).  The
  engine cannot snapshot its live scheduler (closures), so recovery is
  re-execution, not resumption — and re-execution is exact because
  every source of nondeterminism is keyed off the seed.

:func:`recover_runtime` builds a fresh runtime that *trusts like the
crashed one*: quarantined principals re-quarantined, certificate
revocation re-applied, the attestation store repopulated from journaled
tags, the keyring rebuilt from the manifest's master secret.

All :mod:`repro.runtime` imports are lazy (inside functions): the
runtime package imports :mod:`repro.storage` when ``durable=`` is in
play, and a module-level import here would make package init cyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set, Tuple, Union

from repro.core.errors import StorageError
from repro.storage.checkpoint import collect_entries
from repro.storage.journal import DeliveryEntry, NoteEntry, ZERO_DIGEST
from repro.storage.segments import DurableStore

__all__ = [
    "RecoveredState",
    "ReplayReport",
    "load_state",
    "recover_runtime",
    "runtime_from_manifest",
    "verify_replay",
]


@dataclass(slots=True)
class RecoveredState:
    """Everything the durable store knows about the crashed run."""

    store: DurableStore
    manifest: dict
    entries: List[DeliveryEntry]
    notes: List[NoteEntry]
    quarantined: Set[str]
    revoked: bool
    tampered: int
    trace_digest: bytes
    checkpoint_generation: int
    torn: List[str] = field(default_factory=list)
    segments: List[Tuple[int, int]] = field(default_factory=list)
    """``(generation, cumulative delivery count)`` per source segment —
    see :attr:`repro.storage.checkpoint.RecordView.segments`."""

    def generation_of(self, index: int) -> Optional[int]:
        """The generation whose segment persisted delivery ``index``."""

        for generation, end in self.segments:
            if index < end:
                return generation
        return None

    @property
    def delivered(self) -> int:
        return len(self.entries)

    def attestation_pairs(self) -> List[Tuple[object, bytes]]:
        """All journaled ``(spine node, tag)`` pairs, first-write order."""

        pairs = []
        seen = set()
        for entry in self.entries:
            for node, tag in zip(entry.new_nodes, entry.tags):
                if tag is not None and node not in seen:
                    seen.add(node)
                    pairs.append((node, tag))
        return pairs

    def delivered_trace(self) -> list:
        """The persisted trace in the merged-trace comparison shape."""

        return [
            (
                entry.time,
                entry.principal,
                entry.channel,
                entry.values,
                entry.branch_index,
            )
            for entry in self.entries
        ]


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of a deterministic replay verification."""

    ok: bool
    persisted: int
    replayed: int
    detail: str
    divergence_index: Optional[int] = None
    """Index of the first persisted delivery the replay contradicts
    (``None`` when the replay verified)."""


def load_state(store: Union[DurableStore, str, Path]) -> RecoveredState:
    """Read the full durable record without building a runtime."""

    if not isinstance(store, DurableStore):
        store = DurableStore(store)
    manifest = store.read_manifest()
    if manifest is None:
        raise StorageError(
            f"{store.root} has no MANIFEST.json — not a durable store "
            f"(for sharded runs, point at a shard-N subdirectory or the "
            f"root)"
        )
    record = collect_entries(store)
    header = (
        record.checkpoint.header if record.checkpoint is not None else {}
    )
    quarantined = set(header.get("quarantined", []))
    revoked = bool(header.get("revoked", False))
    tampered = 0
    for note in record.notes:
        if note.kind == "quarantine":
            quarantined.add(note.detail)
        elif note.kind == "revoke":
            revoked = True
        elif note.kind == "tamper":
            tampered += 1
    return RecoveredState(
        store=store,
        manifest=manifest,
        entries=record.entries,
        notes=record.notes,
        quarantined=quarantined,
        revoked=revoked,
        tampered=tampered,
        trace_digest=record.trace_digest,
        checkpoint_generation=(
            record.checkpoint.generation if record.checkpoint else 0
        ),
        torn=record.torn,
        segments=record.segments,
    )


def runtime_from_manifest(
    manifest: dict,
    durable=None,
    **overrides,
):
    """Build a fresh runtime matching the manifest's recorded config.

    ``metrics_retention``/``detailed_metrics`` default to full retention
    (the replay comparison needs every delivered record); everything
    behavioral — seed, mode, vetting, scheduler, wire version, faults,
    latency, keyring — comes from the manifest.  Keyword ``overrides``
    win over the manifest.
    """

    from repro.core.integrity import KeyRing
    from repro.core.semantics import SemanticsMode
    from repro.runtime.network import FaultPlan, LatencyModel
    from repro.runtime.runtime import DistributedRuntime

    config = manifest.get("runtime")
    if not isinstance(config, dict):
        raise StorageError("manifest carries no runtime config to rebuild")
    kwargs = dict(
        seed=config["seed"],
        mode=SemanticsMode[config["mode"]],
        enforce_integrity=config["enforce_integrity"],
        replication_budget=config["replication_budget"],
        processing_delay=config["processing_delay"],
        wire_version=config["wire_version"],
        vetting=config["vetting"],
        scheduler=config["scheduler"],
        crypto=config["crypto"],
        verify_deliveries=config["verify_deliveries"],
        latency=LatencyModel(
            config["latency_base"], config["latency_jitter"]
        ),
        detailed_metrics=False,
        metrics_retention=None,
        durable=durable,
    )
    faults = manifest.get("faults")
    if faults:
        kwargs["fault_plan"] = FaultPlan(**faults)
    master = manifest.get("keyring_master")
    if master:
        kwargs["keyring"] = KeyRing(bytes.fromhex(master))
    kwargs.update(overrides)
    return DistributedRuntime(**kwargs)


def rebuild_system(manifest: dict):
    """Re-parse the manifest's pretty-printed system source."""

    from repro.lang import parse_system

    source = manifest.get("system")
    if not source:
        raise StorageError(
            "manifest carries no system source — the run was deployed "
            "without repro-side source capture (e.g. a shard worker); "
            "replay verification needs the root store or a single-"
            "runtime store"
        )
    return parse_system(source, principals=manifest.get("principals", ()))


def verify_replay(
    store: Union[DurableStore, str, Path],
    state: Optional[RecoveredState] = None,
    max_events: int = 10_000_000,
) -> ReplayReport:
    """Re-execute from the manifest; persisted record must be a prefix.

    The persisted record can be *shorter* than the fresh run (the crash
    happened mid-run, or the final journal tail was torn) but every
    record it does hold must match the uninterrupted run bit for bit,
    in order.  This is the merged-trace contract from the sharding work
    applied across process lifetimes.
    """

    if state is None:
        state = load_state(store)
    system = rebuild_system(state.manifest)
    runtime = runtime_from_manifest(state.manifest)
    runtime.deploy(system)
    runtime.run(max_events=max_events)
    replayed = [
        (
            record.time,
            record.principal,
            record.channel,
            record.values,
            record.branch_index,
        )
        for record in runtime.metrics.delivered
    ]
    persisted = state.delivered_trace()
    if len(persisted) > len(replayed):
        return ReplayReport(
            False,
            len(persisted),
            len(replayed),
            f"persisted record has {len(persisted)} deliveries but the "
            f"replay produced only {len(replayed)}",
            divergence_index=len(replayed),
        )
    for index, (disk, fresh) in enumerate(zip(persisted, replayed)):
        if disk != fresh:
            return ReplayReport(
                False,
                len(persisted),
                len(replayed),
                f"first divergence at delivery {index}: "
                f"persisted {disk!r} != replayed {fresh!r}",
                divergence_index=index,
            )
    suffix = len(replayed) - len(persisted)
    return ReplayReport(
        True,
        len(persisted),
        len(replayed),
        f"bit-identical prefix of {len(persisted)} deliveries"
        + (f" ({suffix} post-crash deliveries re-executed)" if suffix else ""),
    )


def recover_runtime(
    store: Union[DurableStore, str, Path],
    state: Optional[RecoveredState] = None,
    **overrides,
):
    """A fresh runtime that trusts exactly what the crashed one did.

    Quarantine, certificate revocation, and the attestation store are
    restored from the durable record; the keyring is rebuilt from the
    manifest's master secret, so recovered tags verify.  Returns
    ``(runtime, state)``.  The recovered entries are pinned on the
    runtime (``runtime.recovered_state``) so the interned spines they
    reference stay alive as long as the runtime does.
    """

    if state is None:
        state = load_state(store)
    runtime = runtime_from_manifest(state.manifest, **overrides)
    middleware = runtime.middleware
    from repro.core.names import Principal

    for name in sorted(state.quarantined):
        principal = Principal(name)
        if principal not in middleware.quarantined:
            middleware.quarantined.add(principal)
    if state.revoked and middleware.certificate is not None:
        middleware.certificate = None
    for node, tag in state.attestation_pairs():
        middleware.attestations.record(node, tag)
    runtime.recovered_state = state
    return runtime, state
