"""Append-only CRC-framed segments and the durable store layout.

A *segment* is a flat file of records, each framed as::

    ┌────────────────┬─────────────┬──────────────────┐
    │ varint(len(p)) │ payload  p  │ crc32(p)  4B LE  │
    └────────────────┴─────────────┴──────────────────┘

The length prefix reuses the wire layer's canonical LEB128 varints
(overlong encodings rejected), so a segment reader needs no schema to
skip records it does not understand.  The CRC makes every record
self-validating: a crash mid-append leaves a *torn tail* — a partial
length, a short payload, or a CRC mismatch — and :func:`read_segment`
detects it and yields only the valid prefix.  :func:`repair_segment`
truncates the file in place to that prefix so the segment can be
reopened for append.

This module deliberately knows nothing about what payloads *mean*; the
entry formats live in :mod:`repro.storage.journal`.  It must not import
:mod:`repro.runtime` (beyond the self-contained varint helpers in
:mod:`repro.runtime.wire`) — the runtime imports storage lazily and a
cycle here would deadlock package init.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.errors import StorageError, WireFormatError
from repro.runtime.wire import decode_varint, encode_varint

__all__ = [
    "AttestationSpill",
    "DurableStore",
    "SegmentView",
    "SegmentWriter",
    "atomic_write_bytes",
    "frame_record",
    "iter_record_spans",
    "read_segment",
    "repair_segment",
    "torn_truncate",
]

_CRC_SIZE = 4


def frame_record(payload: bytes) -> bytes:
    """Length-prefix and CRC-frame one record payload."""

    return (
        encode_varint(len(payload))
        + payload
        + zlib.crc32(payload).to_bytes(_CRC_SIZE, "little")
    )


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    Readers never observe a partially written file: they see either the
    old content or the new, complete content.  Used for checkpoints and
    manifests; journals are append-only and rely on CRC framing instead.
    """

    path = Path(path)
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path


class SegmentWriter:
    """Append-only writer for one CRC-framed segment file."""

    __slots__ = ("path", "_handle", "records_written", "bytes_written")

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "ab")
        self.records_written = 0
        self.bytes_written = 0

    def append(self, payload: bytes) -> int:
        """Frame and buffer one record; returns the framed length."""

        framed = frame_record(payload)
        self._handle.write(framed)
        self.records_written += 1
        self.bytes_written += len(framed)
        return len(framed)

    def flush(self, sync: bool = False) -> None:
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def close(self, sync: bool = True) -> None:
        if self._handle.closed:
            return
        self.flush(sync=sync)
        self._handle.close()


class SegmentView:
    """The readable prefix of a segment plus its torn-tail verdict."""

    __slots__ = ("records", "valid_bytes", "torn", "reason")

    def __init__(
        self,
        records: List[bytes],
        valid_bytes: int,
        torn: bool,
        reason: str = "",
    ) -> None:
        self.records = records
        self.valid_bytes = valid_bytes
        self.torn = torn
        self.reason = reason


def iter_record_spans(data: bytes) -> Iterator[Tuple[int, int, bytes]]:
    """Yield ``(start, end, payload)`` for each valid record in ``data``.

    Stops silently at the first malformed record — callers that care
    about *why* use :func:`read_segment`, which reports the reason.
    """

    view = _scan(data)
    offset = 0
    for payload in view.records:
        framed = len(frame_record(payload))
        yield offset, offset + framed, payload
        offset += framed


def _scan(data: bytes) -> SegmentView:
    records: List[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        start = offset
        try:
            length, offset = decode_varint(data, offset)
        except WireFormatError as error:
            return SegmentView(
                records, start, True, f"torn length prefix: {error}"
            )
        end = offset + length + _CRC_SIZE
        if end > total:
            return SegmentView(
                records,
                start,
                True,
                f"short record: need {end - total} more bytes",
            )
        payload = data[offset : offset + length]
        stored = int.from_bytes(
            data[offset + length : end], "little"
        )
        if zlib.crc32(payload) != stored:
            return SegmentView(records, start, True, "CRC mismatch")
        records.append(payload)
        offset = end
    return SegmentView(records, total, False)


def read_segment(path: Union[str, Path]) -> SegmentView:
    """Read a segment, truncating the view at the first invalid record.

    A missing file reads as an empty, untorn segment — callers treat
    "never written" and "written nothing" identically.
    """

    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return SegmentView([], 0, False)
    return _scan(data)


def repair_segment(path: Union[str, Path]) -> bool:
    """Truncate a torn segment in place to its last valid record.

    Returns ``True`` if bytes were dropped.  Idempotent: a clean
    segment (or a missing file) is left untouched.
    """

    path = Path(path)
    view = read_segment(path)
    if not view.torn:
        return False
    with open(path, "r+b") as handle:
        handle.truncate(view.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def torn_truncate(path: Union[str, Path]) -> bool:
    """Cut the last record of a segment mid-record (fault injection).

    Leaves the file ending strictly inside its final record's framing —
    the state a crash mid-append produces — so recovery code can be
    exercised against realistic torn tails.  Returns ``False`` when the
    segment has no records to tear.
    """

    path = Path(path)
    view = read_segment(path)
    if not view.records:
        return False
    last_payload = view.records[-1]
    framed = len(frame_record(last_payload))
    start = view.valid_bytes - framed
    # a frame is at least 6 bytes (varint + payload byte + CRC32), so
    # the cut lands strictly inside the final record
    cut = start + max(1, framed // 2)
    with open(path, "r+b") as handle:
        handle.truncate(cut)
        handle.flush()
        os.fsync(handle.fileno())
    return True


class AttestationSpill:
    """Fixed-width spill file for attestation tags: ``digest16 ‖ tag16``.

    The in-RAM :class:`~repro.core.integrity.AttestationStore` evicts
    weak entries once they are journaled here; a verify miss seeks the
    tag back by digest.  Records are 32 bytes with no framing — a torn
    tail is simply ``size % 32`` trailing bytes, truncated on open so
    the offset index stays record-aligned.
    """

    RECORD_SIZE = 32
    _DIGEST_SIZE = 16

    __slots__ = ("path", "_index", "_handle", "_size")

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._index: Dict[bytes, int] = {}
        self._handle = None
        self._size = 0
        if self.path.exists():
            data = self.path.read_bytes()
            usable = len(data) - len(data) % self.RECORD_SIZE
            if usable != len(data):
                with open(self.path, "r+b") as handle:
                    handle.truncate(usable)
            for offset in range(0, usable, self.RECORD_SIZE):
                digest = data[offset : offset + self._DIGEST_SIZE]
                self._index[digest] = offset
            self._size = usable

    def _file(self):
        if self._handle is None:
            self._handle = open(self.path, "a+b")
        return self._handle

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._index

    def append(self, digest: bytes, tag: bytes) -> None:
        if digest in self._index:
            return
        if (
            len(digest) != self._DIGEST_SIZE
            or len(tag) != self.RECORD_SIZE - self._DIGEST_SIZE
        ):
            raise StorageError(
                f"spill record must be {self._DIGEST_SIZE}+"
                f"{self.RECORD_SIZE - self._DIGEST_SIZE} bytes, got "
                f"{len(digest)}+{len(tag)}"
            )
        self._file().write(digest + tag)
        self._index[digest] = self._size
        self._size += self.RECORD_SIZE

    def lookup(self, digest: bytes) -> Optional[bytes]:
        offset = self._index.get(digest)
        if offset is None:
            return None
        handle = self._file()
        handle.flush()
        handle.seek(offset)
        record = handle.read(self.RECORD_SIZE)
        if (
            len(record) != self.RECORD_SIZE
            or record[: self._DIGEST_SIZE] != digest
        ):
            raise StorageError(
                f"attestation spill corrupt at offset {offset}"
            )
        return record[self._DIGEST_SIZE :]

    def flush(self, sync: bool = False) -> None:
        if self._handle is not None:
            self._handle.flush()
            if sync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush(sync=True)
            self._handle.close()
            self._handle = None


_JOURNAL_PATTERN = re.compile(r"journal-(\d{8})\.seg$")
_CHECKPOINT_PATTERN = re.compile(r"checkpoint-(\d{8})\.ck$")
_QUERY_INDEX_PATTERN = re.compile(r"queryindex-(\d{8})\.seg$")


class DurableStore:
    """Directory layout for one runtime's durable record.

    ::

        <root>/
          MANIFEST.json          # config needed to re-execute the run
          journal-00000001.seg   # delivery journal, generation 1
          checkpoint-00000001.ck # compacted snapshot through gen 1
          journal-00000002.seg   # suffix journaled after the checkpoint
          windows.seg            # shard-only: write-ahead window WAL
          attest.spill           # spilled attestation tags
          shard-0/ shard-1/ ...  # sharded runs: one store per shard

    Generations monotonically increase; checkpoint *g* subsumes journal
    generations ``≤ g``, which :meth:`compact` garbage-collects (their
    spine nodes are unreachable from any live checkpoint — the newest
    checkpoint re-encodes the full record, so older segments pin
    nothing).
    """

    MANIFEST = "MANIFEST.json"

    __slots__ = ("root",)

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------

    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def journal_path(self, generation: int) -> Path:
        return self.root / f"journal-{generation:08d}.seg"

    def checkpoint_path(self, generation: int) -> Path:
        return self.root / f"checkpoint-{generation:08d}.ck"

    def query_index_path(self, generation: int) -> Path:
        """The provenance-query-index snapshot beside checkpoint
        ``generation`` (see :mod:`repro.query.persist`)."""

        return self.root / f"queryindex-{generation:08d}.seg"

    def windows_path(self) -> Path:
        return self.root / "windows.seg"

    def spill_path(self) -> Path:
        return self.root / "attest.spill"

    def shard_dir(self, index: int) -> Path:
        return self.root / f"shard-{index}"

    def shard_dirs(self) -> List[Path]:
        return sorted(
            (p for p in self.root.glob("shard-*") if p.is_dir()),
            key=lambda p: int(p.name.split("-")[1]),
        )

    # -- generations ---------------------------------------------------

    def journal_generations(self) -> List[int]:
        return self._generations(_JOURNAL_PATTERN)

    def checkpoint_generations(self) -> List[int]:
        return self._generations(_CHECKPOINT_PATTERN)

    def query_index_generations(self) -> List[int]:
        return self._generations(_QUERY_INDEX_PATTERN)

    def _generations(self, pattern) -> List[int]:
        found = []
        for entry in self.root.iterdir():
            match = pattern.search(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # -- manifest ------------------------------------------------------

    def write_manifest(self, manifest: dict) -> Path:
        return atomic_write_bytes(
            self.manifest_path(),
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
            + b"\n",
        )

    def read_manifest(self) -> Optional[dict]:
        try:
            text = self.manifest_path().read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise StorageError(
                f"manifest {self.manifest_path()} is corrupt: {error}"
            ) from None

    # -- lifecycle -----------------------------------------------------

    def is_empty_record(self) -> bool:
        """True when no journal or checkpoint has ever been written."""

        return not self.journal_generations() and not (
            self.checkpoint_generations()
        )

    def compact(self) -> List[Path]:
        """Drop journals and checkpoints subsumed by the newest checkpoint.

        Checkpoint *g* carries the complete delivery record through
        journal generation *g*, so journals ``≤ g`` and checkpoints
        ``< g`` pin no reachable spine nodes.  Returns the deleted
        paths.
        """

        checkpoints = self.checkpoint_generations()
        if not checkpoints:
            return []
        newest = checkpoints[-1]
        removed = []
        for generation in self.journal_generations():
            if generation <= newest:
                path = self.journal_path(generation)
                path.unlink(missing_ok=True)
                removed.append(path)
        for generation in checkpoints:
            if generation < newest:
                path = self.checkpoint_path(generation)
                path.unlink(missing_ok=True)
                removed.append(path)
        snapshots = self.query_index_generations()
        if snapshots:
            # a query-index snapshot is only an accelerator: keep the
            # newest, drop the ones older snapshots already subsume
            for generation in snapshots[:-1]:
                path = self.query_index_path(generation)
                path.unlink(missing_ok=True)
                removed.append(path)
        return removed

    def reset_record(self) -> List[Path]:
        """Delete the delivery record (journals, checkpoints, spill).

        Used by a recovering shard worker before deterministic
        re-execution: the replacement rebuilds the record from scratch,
        so whatever partial state the killed incarnation left — flushed
        or torn — is dropped wholesale.  The window WAL and manifest
        survive; they *drive* the re-execution.
        """

        removed = []
        for generation in self.journal_generations():
            path = self.journal_path(generation)
            path.unlink(missing_ok=True)
            removed.append(path)
        for generation in self.checkpoint_generations():
            path = self.checkpoint_path(generation)
            path.unlink(missing_ok=True)
            removed.append(path)
        for generation in self.query_index_generations():
            path = self.query_index_path(generation)
            path.unlink(missing_ok=True)
            removed.append(path)
        spill = self.spill_path()
        if spill.exists():
            spill.unlink()
            removed.append(spill)
        return removed

    def wipe(self) -> List[Path]:
        """Delete the whole store record, WAL and manifest included.

        Used when a *fresh* run reuses an existing directory: unlike
        :meth:`reset_record`, nothing from the previous run survives —
        a stale window WAL or manifest would otherwise poison a later
        recovery with another run's history.
        """

        removed = self.reset_record()
        for path in (self.windows_path(), self.manifest_path()):
            if path.exists():
                path.unlink()
                removed.append(path)
        return removed
