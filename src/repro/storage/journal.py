"""The write-ahead delivery journal and the shard window WAL.

Two record streams live here:

* The **delivery journal** (``journal-<gen>.seg``): every delivery the
  middleware hands to a receiver, in delivery order, encoded with the
  v2 wire codec in streaming mode so each generation's spine table is
  shared across records (first occurrence inline, back-references
  after — the same delta encoding the cross-shard wire uses).  Each
  delivery record also carries the attestation tags of the spine nodes
  it introduced, so a recovered :class:`AttestationStore` can answer
  verify queries without the signing keys ever leaving the manifest.
  Encoding is *deferred*, sizer-thunk style: :meth:`DurabilitySink.
  record_delivery` appends object references to a pending list and the
  bytes are produced in batches at :meth:`~DurabilitySink.flush` — the
  hot delivery path pays one list append.

* The **window WAL** (``windows.seg``): shard workers journal each
  barrier window *before* executing it — boundary, event budget, and
  the cross-shard envelopes the conductor routed in.  Because the
  engine is deterministic, this WAL is a complete recipe for rebuilding
  a killed shard: a replacement process replays the journaled windows
  from ``t = 0`` and arrives at the exact pre-crash state.

Journal entry payloads (inside the CRC framing of
:mod:`repro.storage.segments`)::

    delivery  0x01 ‖ f64 time ‖ name principal ‖ name channel
                   ‖ varint branch ‖ f64 latency ‖ v2 frame(values)
                   ‖ varint n_new ‖ n_new × (0x00 | 0x01 ‖ tag16)
    note      0x02 ‖ name kind ‖ name detail
    window    0x03 ‖ f64 boundary ‖ varint budget
                   ‖ varint len ‖ pickle(envelopes)

The chained **trace digest** commits to the delivery order: starting
from sixteen zero bytes, each delivery folds in as
``blake2b(prev ‖ key, 16)`` where *key* binds time, principal, channel,
branch, and every stamped value with its provenance digest.  Checkpoint
footers carry it; recovery recomputes it; the E23 gate compares it
across the crashed and crash-free runs.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import StorageError
from repro.core.names import Channel, Principal
from repro.core.provenance import Provenance
from repro.core.values import AnnotatedValue
from repro.runtime.wire import (
    Codec,
    _decode_name,
    _encode_name,
    decode_varint,
    encode_varint,
)
from repro.storage.segments import (
    DurableStore,
    SegmentWriter,
    read_segment,
    repair_segment,
)

__all__ = [
    "DeliveryEntry",
    "DurabilitySink",
    "NoteEntry",
    "WindowEntry",
    "WindowJournal",
    "ZERO_DIGEST",
    "chain_digest",
    "decode_entry",
    "delivery_key",
    "encode_delivery_entry",
    "read_journal",
    "read_window_journal",
]

K_DELIVERY = 0x01
_K_DELIVERY_BYTE = bytes((K_DELIVERY,))
K_NOTE = 0x02
K_WINDOW = 0x03
K_HEADER = 0x10
K_FOOTER = 0x11

ZERO_DIGEST = b"\x00" * 16

_F64 = struct.Struct("<d")


def chain_digest(previous: bytes, key: bytes) -> bytes:
    """Fold one delivery key into the running trace digest."""

    return hashlib.blake2b(previous + key, digest_size=16).digest()


def delivery_key(
    time: float,
    principal: Principal,
    channel: Channel,
    branch_index: int,
    values: Tuple[AnnotatedValue, ...],
) -> bytes:
    """Canonical bytes binding one delivery for the trace digest."""

    parts = [
        _F64.pack(time),
        principal.name.encode("utf-8"),
        b"\x00",
        channel.name.encode("utf-8"),
        b"\x00",
        encode_varint(branch_index),
    ]
    for annotated in values:
        plain = annotated.value
        parts.append(b"\x01" if isinstance(plain, Principal) else b"\x02")
        parts.append(plain.name.encode("utf-8"))
        parts.append(b"\x00")
        parts.append(annotated.provenance.digest)
    return b"".join(parts)


@dataclass(frozen=True, slots=True)
class DeliveryEntry:
    """One journaled delivery, as decoded back from a segment."""

    time: float
    principal: Principal
    channel: Channel
    branch_index: int
    latency: float
    values: Tuple[AnnotatedValue, ...]
    new_nodes: Tuple[Provenance, ...]
    """Spine nodes this record introduced to its segment's codec table
    (post-order, matching decode order)."""
    tags: Tuple[Optional[bytes], ...]
    """Attestation tags aligned with :attr:`new_nodes`; ``None`` where
    the run had crypto off or the node was never attested."""

    def key(self) -> bytes:
        return delivery_key(
            self.time,
            self.principal,
            self.channel,
            self.branch_index,
            self.values,
        )


@dataclass(frozen=True, slots=True)
class NoteEntry:
    """A journaled state transition that is not a delivery.

    ``kind`` is one of ``quarantine`` (detail: principal name),
    ``revoke`` (detail: certificate scope), or ``tamper`` (detail: the
    metrics tamper kind) — the punishments and detections recovery must
    re-apply so a restored runtime distrusts whom the crashed one did.
    """

    kind: str
    detail: str


@dataclass(frozen=True, slots=True)
class WindowEntry:
    """One write-ahead barrier window from a shard's window WAL."""

    boundary: float
    budget: int
    envelopes: tuple


def encode_delivery_entry(
    codec: Codec,
    time: float,
    principal: Principal,
    channel: Channel,
    branch_index: int,
    latency: float,
    values: Tuple[AnnotatedValue, ...],
    tag_lookup: Optional[Callable[[Provenance], Optional[bytes]]],
) -> Tuple[bytes, Tuple[Provenance, ...], Tuple[Optional[bytes], ...]]:
    """Encode one delivery through ``codec``; returns payload + spine delta.

    The payload body rides the codec's raw :meth:`Codec.encode_payload`
    — no per-frame blake2b seal: the segment's CRC32 framing already
    catches byte corruption and the chained trace digest commits the
    structural history, so the wire frame's belt-and-braces digest
    would only tax the capture hot path.
    """

    encoder = codec._encoder
    registered = len(encoder._spine_order)
    body = codec.encode_payload(values)
    new_nodes = tuple(encoder._spine_order[registered:])
    tags = tuple(
        tag_lookup(node) if tag_lookup is not None else None
        for node in new_nodes
    )
    parts = [
        _K_DELIVERY_BYTE,
        _F64.pack(time),
        _encode_name(principal.name),
        _encode_name(channel.name),
        encode_varint(branch_index),
        _F64.pack(latency),
        body,
        encode_varint(len(tags)),
    ]
    for tag in tags:
        parts.append(b"\x01" + tag if tag is not None else b"\x00")
    return b"".join(parts), new_nodes, tags


def encode_note_entry(kind: str, detail: str) -> bytes:
    return bytes((K_NOTE,)) + _encode_name(kind) + _encode_name(detail)


def decode_entry(payload: bytes, codec: Codec):
    """Decode one journal record payload (delivery or note)."""

    if not payload:
        raise StorageError("empty journal record")
    kind = payload[0]
    if kind == K_NOTE:
        note_kind, offset = _decode_name(payload, 1)
        detail, offset = _decode_name(payload, offset)
        if offset != len(payload):
            raise StorageError("trailing bytes after note record")
        return NoteEntry(note_kind, detail)
    if kind != K_DELIVERY:
        raise StorageError(f"unknown journal record kind 0x{kind:02x}")
    offset = 1
    (time,) = _F64.unpack_from(payload, offset)
    offset += _F64.size
    principal_name, offset = _decode_name(payload, offset)
    channel_name, offset = _decode_name(payload, offset)
    branch_index, offset = decode_varint(payload, offset)
    (latency,) = _F64.unpack_from(payload, offset)
    offset += _F64.size
    decoder = codec._decoder
    constructed = len(decoder._spines)
    values, offset = codec.decode_payload(payload, offset)
    new_nodes = tuple(decoder._spines[constructed:])
    n_tags, offset = decode_varint(payload, offset)
    if n_tags != len(new_nodes):
        raise StorageError(
            f"journal record carries {n_tags} tags for "
            f"{len(new_nodes)} new spine nodes"
        )
    tags: List[Optional[bytes]] = []
    for _ in range(n_tags):
        marker = payload[offset]
        offset += 1
        if marker == 0x01:
            tags.append(payload[offset : offset + 16])
            offset += 16
        elif marker == 0x00:
            tags.append(None)
        else:
            raise StorageError(f"bad tag marker 0x{marker:02x}")
    if offset != len(payload):
        raise StorageError("trailing bytes after delivery record")
    return DeliveryEntry(
        time=time,
        principal=Principal(principal_name),
        channel=Channel(channel_name),
        branch_index=branch_index,
        latency=latency,
        values=values,
        new_nodes=new_nodes,
        tags=tuple(tags),
    )


def read_journal(
    path: Union[str, Path],
) -> Tuple[list, bool]:
    """Decode one journal generation; returns ``(entries, torn)``.

    A torn tail (crash mid-append) truncates the view to the valid
    prefix — entries past the tear are gone, which is exactly the
    write-ahead contract: nothing past the last complete record was
    ever acknowledged.  CRC-valid records that fail to *decode* raise
    :class:`StorageError` instead: that is corruption the frame check
    cannot explain, not a torn tail.
    """

    view = read_segment(path)
    codec = Codec()
    entries = []
    for payload in view.records:
        entries.append(decode_entry(payload, codec))
    return entries, view.torn


class DurabilitySink:
    """Streams the middleware's delivered record into a durable store.

    The middleware calls :meth:`record_delivery` (hot path: one list
    append) and :meth:`note`; the sink encodes pending entries in
    batches of :data:`FLUSH_BOUND` through one streaming codec per
    journal generation.  :meth:`checkpoint` compacts everything
    journaled so far into an atomic, generation-stamped snapshot and
    rolls to a fresh generation (and codec table).
    """

    FLUSH_BOUND = 1024

    __slots__ = (
        "store",
        "generation",
        "trace_digest",
        "delivered_count",
        "notes_count",
        "_lookup",
        "_codec",
        "_writer",
        "_pending",
    )

    def __init__(
        self,
        store: Union[DurableStore, str, Path],
        attestation_lookup: Optional[
            Callable[[Provenance], Optional[bytes]]
        ] = None,
        wipe: bool = False,
    ) -> None:
        if not isinstance(store, DurableStore):
            store = DurableStore(store)
        if wipe:
            store.reset_record()
        if not store.is_empty_record():
            raise StorageError(
                f"store {store.root} already holds a record "
                f"(journals {store.journal_generations()}, checkpoints "
                f"{store.checkpoint_generations()}); recover it or pass "
                f"wipe=True to start over"
            )
        self.store = store
        self.generation = 1
        self.trace_digest = ZERO_DIGEST
        self.delivered_count = 0
        self.notes_count = 0
        self._lookup = attestation_lookup
        self._codec = Codec()
        self._writer = SegmentWriter(store.journal_path(self.generation))
        self._pending: list = []

    # -- recording (hot path) -----------------------------------------

    def record_delivery(
        self,
        time: float,
        principal: Principal,
        channel: Channel,
        values: Tuple[AnnotatedValue, ...],
        branch_index: int,
        latency: float,
    ) -> None:
        self._pending.append(
            (time, principal, channel, values, branch_index, latency)
        )
        if len(self._pending) >= self.FLUSH_BOUND:
            self.flush()

    def note(self, kind: str, detail: str) -> None:
        self._pending.append((kind, detail))
        if len(self._pending) >= self.FLUSH_BOUND:
            self.flush()

    # -- persistence ---------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        """Encode and append every pending entry, in order."""

        if self._pending:
            writer = self._writer
            codec = self._codec
            lookup = self._lookup
            digest = self.trace_digest
            for entry in self._pending:
                if len(entry) == 2:
                    writer.append(encode_note_entry(*entry))
                    self.notes_count += 1
                    continue
                time, principal, channel, values, branch, latency = entry
                payload, _, _ = encode_delivery_entry(
                    codec,
                    time,
                    principal,
                    channel,
                    branch,
                    latency,
                    values,
                    lookup,
                )
                writer.append(payload)
                digest = chain_digest(
                    digest,
                    delivery_key(time, principal, channel, branch, values),
                )
                self.delivered_count += 1
            self.trace_digest = digest
            self._pending.clear()
        self._writer.flush(sync=sync)

    def checkpoint(self, state: dict, compact: bool = True):
        """Compact the record into a new checkpoint and roll generations.

        ``state`` is the runtime's snapshot header (time, event count,
        summary, quarantined principals, ...); the sink adds its own
        generation, counters, and trace digest.  Returns the checkpoint
        path.  Journals subsumed by the new checkpoint (and superseded
        older checkpoints) are deleted unless ``compact=False``.
        """

        from repro.storage.checkpoint import collect_entries, write_checkpoint

        self.flush(sync=True)
        self._writer.close()
        record = collect_entries(self.store)
        header = dict(state)
        header["generation"] = self.generation
        header["delivered"] = self.delivered_count
        header["notes"] = [
            [note.kind, note.detail] for note in record.notes
        ]
        header["trace_digest"] = self.trace_digest.hex()
        path = write_checkpoint(
            self.store, self.generation, header, record.entries
        )
        if compact:
            self.store.compact()
        self.generation += 1
        self._codec = Codec()
        self._writer = SegmentWriter(
            self.store.journal_path(self.generation)
        )
        return path

    def close(self, sync: bool = True) -> None:
        self.flush(sync=sync)
        self._writer.close(sync=sync)


class WindowJournal:
    """Write-ahead log of barrier windows for one shard.

    Opened for append after repairing any torn tail from a previous
    incarnation.  Every :meth:`record` is flushed and fsynced before
    returning — the window must be durable *before* the worker executes
    it, or a kill mid-window would leave the replacement without its
    recipe.
    """

    __slots__ = ("path", "_writer")

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        repair_segment(self.path)
        self._writer = SegmentWriter(self.path)

    def record(
        self, boundary: float, budget: int, envelopes: Sequence
    ) -> None:
        blob = pickle.dumps(list(envelopes), pickle.HIGHEST_PROTOCOL)
        payload = (
            bytes((K_WINDOW,))
            + _F64.pack(boundary)
            + encode_varint(budget)
            + encode_varint(len(blob))
            + blob
        )
        self._writer.append(payload)
        self._writer.flush(sync=True)

    def close(self) -> None:
        self._writer.close()


def read_window_journal(
    path: Union[str, Path],
) -> Tuple[List[WindowEntry], bool]:
    """Decode a shard's window WAL; returns ``(windows, torn)``."""

    view = read_segment(path)
    windows: List[WindowEntry] = []
    for payload in view.records:
        if not payload or payload[0] != K_WINDOW:
            raise StorageError(
                f"window WAL {path} holds a non-window record"
            )
        offset = 1
        (boundary,) = _F64.unpack_from(payload, offset)
        offset += _F64.size
        budget, offset = decode_varint(payload, offset)
        length, offset = decode_varint(payload, offset)
        blob = payload[offset : offset + length]
        if len(blob) != length or offset + length != len(payload):
            raise StorageError(f"window WAL {path} record length mismatch")
        envelopes = tuple(pickle.loads(blob))
        windows.append(WindowEntry(boundary, budget, envelopes))
    return windows, view.torn
