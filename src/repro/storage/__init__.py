"""Durable provenance: crash-recoverable segment store and replay.

The runtime's in-memory record — interned spines, attestation tags, the
delivered-event log — dies with the process that built it.  This package
makes the record survive:

* :mod:`repro.storage.segments` — append-only, CRC-framed record files
  with torn-tail detection, the attestation spill file, and the
  :class:`~repro.storage.segments.DurableStore` directory layout
  (manifest, generation-stamped journals and checkpoints).
* :mod:`repro.storage.journal` — the write-ahead delivery journal
  :class:`~repro.storage.journal.DurabilitySink` the middleware streams
  delivered events and attestations into (deferred encoding, flushed in
  batches), plus the per-shard window WAL used for kill recovery.
* :mod:`repro.storage.checkpoint` — atomic, generation-stamped
  checkpoints that compact the journal prefix into one self-contained
  segment (runtime state header, re-encoded delivery records, chained
  trace digest footer).
* :mod:`repro.storage.recover` — load the newest valid checkpoint plus
  the journal suffix, and deterministically re-execute the manifest's
  system to verify the persisted record is a bit-identical prefix of
  the crash-free run.

Import order note: :mod:`repro.storage.recover` builds runtimes, so it
imports :mod:`repro.runtime` lazily inside functions; the runtime side
likewise imports this package lazily when ``durable=`` is requested.
Nothing here may import :mod:`repro.runtime` at module level.
"""

from repro.storage.checkpoint import (
    Checkpoint,
    load_latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.storage.journal import (
    DeliveryEntry,
    DurabilitySink,
    NoteEntry,
    WindowEntry,
    WindowJournal,
    chain_digest,
    delivery_key,
    read_journal,
    read_window_journal,
)
from repro.storage.recover import (
    RecoveredState,
    ReplayReport,
    load_state,
    recover_runtime,
    verify_replay,
)
from repro.storage.segments import (
    AttestationSpill,
    DurableStore,
    SegmentView,
    SegmentWriter,
    atomic_write_bytes,
    read_segment,
    repair_segment,
    torn_truncate,
)

__all__ = [name for name in dir() if not name.startswith("_")]
